//! The two search engines and the Fig-6 merge policies.
//!
//! * **Keyword engine** — BM25 over the inverted index (ElasticSearch's
//!   role; with `MergePolicy::EsOnly` it *is* the Solr baseline the paper
//!   compares against).
//! * **Graph engine** — walks the property graph (Neo4j's role): a report
//!   matches when it mentions every query concept; when the query carries
//!   a temporal pattern, the report's event steps must realize it. Pattern
//!   realizations outrank concept-only matches.
//! * **Merge** — "By default, Neo4j is the primary search engine in
//!   CREATe-IR. The results returned by Neo4j will be placed on top,
//!   followed by results from ElasticSearch" (Section III-D).

use crate::pipeline::QueryIE;
use crate::system::ShardSnapshot;
use create_graphdb::{NodeId, PropertyGraph};
use create_index::{CorpusStats, Index, QueryNode, Scorer};
use create_ontology::{ConceptId, RelationType};
use std::collections::HashMap;
use std::sync::Arc;

/// Which engine produced a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchSource {
    /// The property-graph engine.
    Graph,
    /// The keyword (BM25) engine.
    Keyword,
}

/// One ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// External report id.
    pub report_id: String,
    /// Engine-specific score (comparable within one engine only).
    pub score: f64,
    /// Producing engine.
    pub source: SearchSource,
    /// True when the query's temporal pattern was realized in the report.
    pub pattern_matched: bool,
}

/// Result-merge policies (Fig. 6 and its ablation, experiment E6).
/// `Hash` lets a policy participate in query-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// The paper's default: graph results on top, keyword results after.
    Neo4jFirst,
    /// Keyword results on top, graph results after.
    EsFirst,
    /// Keyword engine only — the Solr baseline.
    EsOnly,
    /// Graph engine only.
    GraphOnly,
    /// Alternate between the two lists.
    Interleave,
}

impl MergePolicy {
    /// Stable lower-snake label — the REST API's policy names, reused as
    /// the metrics `policy` label and in slow-query records.
    pub fn label(self) -> &'static str {
        match self {
            MergePolicy::Neo4jFirst => "neo4j_first",
            MergePolicy::EsFirst => "es_first",
            MergePolicy::EsOnly => "es_only",
            MergePolicy::GraphOnly => "graph_only",
            MergePolicy::Interleave => "interleave",
        }
    }
}

/// Local traversal tally for one graph search, flushed to the obs
/// registry in a single call.
#[derive(Debug, Default)]
struct Traversal {
    nodes: u64,
    edges: u64,
}

/// The graph-side searcher. Holds the concept→node registry shared with
/// [`crate::graph_build::GraphBuilder`].
#[derive(Debug)]
pub struct GraphSearcher {
    concept_nodes: HashMap<ConceptId, NodeId>,
}

impl GraphSearcher {
    /// Builds the searcher by scanning the graph's concept nodes.
    pub fn from_graph(graph: &PropertyGraph) -> GraphSearcher {
        let mut concept_nodes = HashMap::new();
        for id in graph.nodes_with_label("Concept") {
            let node = graph.node(id).expect("listed node exists");
            if let Some(cui) = node
                .props
                .get("cui")
                .and_then(|v| v.as_str())
                .and_then(ConceptId::parse)
            {
                concept_nodes.insert(cui, id);
            }
        }
        GraphSearcher { concept_nodes }
    }

    /// Reports (by node) mentioning a concept.
    fn reports_mentioning(
        &self,
        graph: &PropertyGraph,
        concept: ConceptId,
        traversal: &mut Traversal,
    ) -> Vec<NodeId> {
        let Some(&cnode) = self.concept_nodes.get(&concept) else {
            return Vec::new();
        };
        let incoming = graph.incoming(cnode);
        traversal.edges += incoming.len() as u64;
        incoming
            .into_iter()
            .filter(|e| e.rel_type == "MENTIONS")
            .map(|e| e.source)
            .collect()
    }

    /// Timeline steps at which `concept` occurs in the report.
    fn concept_steps(
        &self,
        graph: &PropertyGraph,
        report: NodeId,
        concept: ConceptId,
        traversal: &mut Traversal,
    ) -> Vec<f64> {
        let cui = concept.to_string();
        let outgoing = graph.outgoing(report);
        traversal.edges += outgoing.len() as u64;
        outgoing
            .into_iter()
            .filter(|e| e.rel_type == "CONTAINS")
            .filter_map(|e| {
                traversal.nodes += 1;
                graph.node(e.target)
            })
            .filter(|event| {
                event
                    .props
                    .get("cui")
                    .and_then(|v| v.as_str())
                    .is_some_and(|c| c == cui)
            })
            .filter_map(|event| event.props.get("step").and_then(|v| v.as_f64()))
            .collect()
    }

    /// True when the report realizes `rel` between the two concepts.
    fn pattern_matches(
        &self,
        graph: &PropertyGraph,
        report: NodeId,
        c1: ConceptId,
        c2: ConceptId,
        rel: RelationType,
        traversal: &mut Traversal,
    ) -> bool {
        let s1 = self.concept_steps(graph, report, c1, traversal);
        let s2 = self.concept_steps(graph, report, c2, traversal);
        for &a in &s1 {
            for &b in &s2 {
                let ok = match rel {
                    RelationType::Before => a < b,
                    RelationType::After => a > b,
                    RelationType::Overlap => (a - b).abs() < f64::EPSILON,
                    _ => false,
                };
                if ok {
                    return true;
                }
            }
        }
        false
    }

    /// Runs the graph query: all concepts required; pattern scored on top.
    pub fn search(&self, graph: &PropertyGraph, query: &QueryIE, k: usize) -> Vec<SearchHit> {
        let concepts = query.event_concepts();
        if concepts.is_empty() {
            return Vec::new();
        }
        let mut traversal = Traversal::default();
        // Candidate reports: intersection over per-concept mention lists,
        // seeded from the rarest concept.
        let mut lists: Vec<Vec<NodeId>> = concepts
            .iter()
            .map(|&c| self.reports_mentioning(graph, c, &mut traversal))
            .collect();
        lists.sort_by_key(Vec::len);
        let Some((seed, rest)) = lists.split_first() else {
            return Vec::new();
        };
        let mut hits = Vec::new();
        for &report in seed {
            traversal.nodes += 1;
            if !rest.iter().all(|l| l.contains(&report)) {
                continue;
            }
            let pattern_matched = match query.pattern {
                Some((c1, c2, rel)) => {
                    self.pattern_matches(graph, report, c1, c2, rel, &mut traversal)
                }
                None => false,
            };
            let node = graph.node(report).expect("report node exists");
            let report_id = node
                .props
                .get("reportId")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string();
            let year = node
                .props
                .get("year")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            // Pattern dominates; recency is a mild tiebreak.
            let score = if pattern_matched { 10.0 } else { 1.0 } + year / 10_000.0;
            hits.push(SearchHit {
                report_id,
                score,
                source: SearchSource::Graph,
                pattern_matched,
            });
        }
        create_obs::record_graph_exec(traversal.nodes, traversal.edges);
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.report_id.cmp(&b.report_id))
        });
        hits.truncate(k);
        hits
    }
}

/// Builds the standard multi-field keyword query over title/body (+ the
/// n-gram field). Analysis depends only on the index's field
/// configuration, which is identical across shards, so a query built
/// against any shard's index works against all of them.
pub(crate) fn keyword_query(index: &Index, query_text: &str) -> QueryNode {
    QueryNode::Bool {
        must: vec![],
        should: vec![
            QueryNode::query_string(index, "title", query_text),
            QueryNode::query_string(index, "body", query_text),
            QueryNode::query_string(index, "body_ngram", query_text),
        ],
        must_not: vec![],
    }
}

/// Runs the keyword engine: BM25 over title/body (+ n-gram field).
pub fn keyword_search(index: &Index, query_text: &str, k: usize) -> Vec<SearchHit> {
    let q = keyword_query(index, query_text);
    index
        .search(&q, k, Scorer::default())
        .into_iter()
        .map(|s| SearchHit {
            report_id: s.external_id,
            score: s.score,
            source: SearchSource::Keyword,
            pattern_matched: false,
        })
        .collect()
}

/// Scatter-gather keyword search over every shard.
///
/// Each shard runs DAAT top-k against its own postings, but under
/// **merged corpus statistics** ([`CorpusStats`]): document frequencies,
/// document counts, and field lengths are summed across shards first, so
/// every shard computes exactly the idf and average-length terms a
/// single global index would — per-document BM25 scores come out
/// bit-identical to the unsharded engine. The per-shard top-k lists are
/// then merged under `(score descending by total_cmp, global ingest
/// ordinal ascending)`. The ordinal tie-break reproduces the
/// single-index internal-doc-id tie-break exactly (internal ids are
/// assigned in ingest order), so the gathered ranking is bit-identical
/// for any shard count — including the trivial N=1 deployment, which
/// short-circuits to the plain single-index path.
pub(crate) fn scatter_keyword_search(
    shards: &[Arc<ShardSnapshot>],
    query_text: &str,
    k: usize,
) -> Vec<SearchHit> {
    if shards.len() == 1 {
        let _span = create_obs::shard_span(create_obs::names::SPAN_KEYWORD_SHARD, 0);
        return keyword_search(&shards[0].index, query_text, k);
    }
    let q = keyword_query(&shards[0].index, query_text);
    let mut stats = CorpusStats::default();
    for shard in shards {
        stats.merge(&CorpusStats::collect(&shard.index, &q));
    }
    // (score, global ordinal, report id) per shard-local hit. Each
    // shard's top-k under its local internal-id tie-break equals its
    // top-k under the ordinal tie-break: routing preserves ingest order
    // within a shard, so local internal ids are ordered exactly like the
    // ordinals they map to.
    let mut gathered: Vec<(f64, u64, String)> = Vec::with_capacity(shards.len() * k);
    for (shard_no, shard) in shards.iter().enumerate() {
        let _span = create_obs::shard_span(create_obs::names::SPAN_KEYWORD_SHARD, shard_no as u32);
        for scored in shard
            .index
            .search_with_stats(&q, k, Scorer::default(), Some(&stats))
        {
            gathered.push((
                scored.score,
                shard.ordinals[scored.doc as usize],
                scored.external_id,
            ));
        }
    }
    gathered.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    gathered.truncate(k);
    gathered
        .into_iter()
        .map(|(score, _, report_id)| SearchHit {
            report_id,
            score,
            source: SearchSource::Keyword,
            pattern_matched: false,
        })
        .collect()
}

/// Scatter-gather graph search over every shard.
///
/// A report's whole neighbourhood — its events, mentions, and temporal
/// edges — lives in its owning shard, so a graph hit's score is computed
/// entirely from shard-local state and is independent of the shard
/// count. Gathering concatenates the per-shard hit lists and re-applies
/// the engine's own ordering (score descending, report id ascending),
/// which is total over distinct report ids — the merged ranking is
/// exactly the single-graph ranking.
pub(crate) fn scatter_graph_search(
    shards: &[Arc<ShardSnapshot>],
    query: &QueryIE,
    k: usize,
) -> Vec<SearchHit> {
    if shards.len() == 1 {
        let _span = create_obs::shard_span(create_obs::names::SPAN_GRAPH_SHARD, 0);
        return GraphSearcher::from_graph(&shards[0].graph).search(&shards[0].graph, query, k);
    }
    let mut hits: Vec<SearchHit> = Vec::new();
    for (shard_no, shard) in shards.iter().enumerate() {
        let _span = create_obs::shard_span(create_obs::names::SPAN_GRAPH_SHARD, shard_no as u32);
        hits.extend(GraphSearcher::from_graph(&shard.graph).search(&shard.graph, query, k));
    }
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| a.report_id.cmp(&b.report_id))
    });
    hits.truncate(k);
    hits
}

/// Merges the two engines' ranked lists under a policy, deduplicating by
/// report id (first occurrence wins) and capping at `k`.
pub fn merge(
    graph_hits: Vec<SearchHit>,
    keyword_hits: Vec<SearchHit>,
    policy: MergePolicy,
    k: usize,
) -> Vec<SearchHit> {
    let ordered: Vec<SearchHit> = match policy {
        MergePolicy::Neo4jFirst => graph_hits.into_iter().chain(keyword_hits).collect(),
        MergePolicy::EsFirst => keyword_hits.into_iter().chain(graph_hits).collect(),
        MergePolicy::EsOnly => keyword_hits,
        MergePolicy::GraphOnly => graph_hits,
        MergePolicy::Interleave => {
            let mut out = Vec::with_capacity(graph_hits.len() + keyword_hits.len());
            let mut g = graph_hits.into_iter();
            let mut e = keyword_hits.into_iter();
            loop {
                match (g.next(), e.next()) {
                    (None, None) => break,
                    (a, b) => {
                        out.extend(a);
                        out.extend(b);
                    }
                }
            }
            out
        }
    };
    let mut seen = std::collections::HashSet::new();
    let mut merged = Vec::with_capacity(k);
    for hit in ordered {
        if seen.insert(hit.report_id.clone()) {
            merged.push(hit);
            if merged.len() >= k {
                break;
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: &str, source: SearchSource) -> SearchHit {
        SearchHit {
            report_id: id.to_string(),
            score: 1.0,
            source,
            pattern_matched: false,
        }
    }

    #[test]
    fn neo4j_first_puts_graph_on_top() {
        let merged = merge(
            vec![
                hit("g1", SearchSource::Graph),
                hit("g2", SearchSource::Graph),
            ],
            vec![hit("e1", SearchSource::Keyword)],
            MergePolicy::Neo4jFirst,
            10,
        );
        let ids: Vec<&str> = merged.iter().map(|h| h.report_id.as_str()).collect();
        assert_eq!(ids, vec!["g1", "g2", "e1"]);
    }

    #[test]
    fn merge_dedupes_by_first_occurrence() {
        let merged = merge(
            vec![hit("x", SearchSource::Graph)],
            vec![
                hit("x", SearchSource::Keyword),
                hit("y", SearchSource::Keyword),
            ],
            MergePolicy::Neo4jFirst,
            10,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].source, SearchSource::Graph);
    }

    #[test]
    fn es_only_drops_graph() {
        let merged = merge(
            vec![hit("g", SearchSource::Graph)],
            vec![hit("e", SearchSource::Keyword)],
            MergePolicy::EsOnly,
            10,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].report_id, "e");
    }

    #[test]
    fn interleave_alternates() {
        let merged = merge(
            vec![
                hit("g1", SearchSource::Graph),
                hit("g2", SearchSource::Graph),
            ],
            vec![
                hit("e1", SearchSource::Keyword),
                hit("e2", SearchSource::Keyword),
            ],
            MergePolicy::Interleave,
            10,
        );
        let ids: Vec<&str> = merged.iter().map(|h| h.report_id.as_str()).collect();
        assert_eq!(ids, vec!["g1", "e1", "g2", "e2"]);
    }

    #[test]
    fn merge_respects_k() {
        let merged = merge(
            (0..5)
                .map(|i| hit(&format!("g{i}"), SearchSource::Graph))
                .collect(),
            (0..5)
                .map(|i| hit(&format!("e{i}"), SearchSource::Keyword))
                .collect(),
            MergePolicy::Neo4jFirst,
            3,
        );
        assert_eq!(merged.len(), 3);
    }
}
