//! Tokenizer for the Cypher-like language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier (keywords are recognized case-insensitively
    /// by the parser).
    Ident(String),
    /// String literal (single or double quoted; `\\` escapes).
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `-`
    Dash,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte position.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a query string.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Tok::ArrowRight);
                    i += 2;
                } else if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit() {
                    // Negative number literal.
                    let (tok, next) = lex_number(input, i)?;
                    out.push(tok);
                    i = next;
                } else {
                    out.push(Tok::Dash);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    out.push(Tok::ArrowLeft);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Tok::Ne);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    let cj = input[j..].chars().next().expect("in bounds");
                    if cj == '\\' && j + 1 < bytes.len() {
                        let esc = input[j + 1..].chars().next().expect("in bounds");
                        s.push(esc);
                        j += 1 + esc.len_utf8();
                    } else if cj == quote {
                        closed = true;
                        j += 1;
                        break;
                    } else {
                        s.push(cj);
                        j += cj.len_utf8();
                    }
                }
                if !closed {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string".to_string(),
                    });
                }
                out.push(Tok::Str(s));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                // `c` is only the first *byte* cast to char; decode the real
                // character to decide (multibyte symbols whose lead byte
                // looks alphabetic must not start an identifier).
                let mut j = i;
                while j < bytes.len() {
                    let cj = input[j..].chars().next().expect("in bounds");
                    if cj.is_alphanumeric() || cj == '_' {
                        j += cj.len_utf8();
                    } else {
                        break;
                    }
                }
                if j == i {
                    let real = input[i..].chars().next().expect("in bounds");
                    return Err(LexError {
                        position: i,
                        message: format!("unexpected character {real:?}"),
                    });
                }
                out.push(Tok::Ident(input[i..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(input: &str, start: usize) -> Result<(Tok, usize), LexError> {
    let bytes = input.as_bytes();
    let mut j = start;
    if bytes[j] == b'-' {
        j += 1;
    }
    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
        j += 1;
    }
    if j < bytes.len()
        && bytes[j] == b'.'
        && j + 1 < bytes.len()
        && (bytes[j + 1] as char).is_ascii_digit()
    {
        j += 1;
        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            j += 1;
        }
    }
    input[start..j]
        .parse::<f64>()
        .map(|n| (Tok::Num(n), j))
        .map_err(|_| LexError {
            position: start,
            message: "invalid number".to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_match_query() {
        let toks = lex("MATCH (a:Concept {label: 'fever'})-[r:BEFORE]->(b) RETURN a, b").unwrap();
        assert!(toks.contains(&Tok::Ident("MATCH".into())));
        assert!(toks.contains(&Tok::Str("fever".into())));
        assert!(toks.contains(&Tok::ArrowRight));
        assert!(toks.contains(&Tok::Colon));
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("a.x >= 2 AND b.y <> 'z' <- ->").unwrap();
        assert!(toks.contains(&Tok::Ge));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::ArrowLeft));
        assert!(toks.contains(&Tok::ArrowRight));
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex("1 2.5 -3").unwrap();
        assert_eq!(toks, vec![Tok::Num(1.0), Tok::Num(2.5), Tok::Num(-3.0)]);
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#"'it\'s' "a\"b""#).unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into()), Tok::Str("a\"b".into())]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn rejects_strange_chars() {
        assert!(lex("MATCH @").is_err());
    }

    #[test]
    fn multibyte_symbol_is_error_not_hang() {
        // '∀' has a lead byte that casts to an alphabetic char; the lexer
        // must reject it instead of looping on an empty identifier.
        assert!(lex("MATCH ∀").is_err());
        assert!(lex("∀").is_err());
        // Genuine multibyte letters are valid identifier chars.
        let toks = lex("étude").unwrap();
        assert_eq!(toks, vec![Tok::Ident("étude".into())]);
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'fièvre'").unwrap();
        assert_eq!(toks, vec![Tok::Str("fièvre".into())]);
    }
}
