//! The pattern-match executor.
//!
//! Executes [`crate::ast::Query`] against a [`PropertyGraph`] with
//! backtracking: seed candidates for the first node pattern come from the
//! property or label index when available; each hop expands along the
//! adjacency lists, respecting direction, relationship type, and property
//! constraints; `WHERE` filters evaluated bindings; `RETURN` projects.

use crate::ast::*;
use crate::store::{EdgeId, NodeId, PropertyGraph};
use create_docstore::Value;
use std::collections::HashMap;
use std::fmt;

/// A value in a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultValue {
    /// A bound node.
    Node(NodeId),
    /// A bound relationship.
    Edge(EdgeId),
    /// A projected property or count.
    Value(Value),
}

/// Query output: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Column headers (the RETURN items, rendered).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<ResultValue>>,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// RETURN/WHERE referenced an unbound variable.
    UnboundVariable(String),
    /// CREATE pattern reused a variable (unsupported).
    InvalidCreate(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
            ExecError::InvalidCreate(m) => write!(f, "invalid CREATE: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Binding {
    Node(NodeId),
    Edge(EdgeId),
}

type Bindings = HashMap<String, Binding>;

/// Traversal counters for one query, flushed to the obs registry in a
/// single call when execution finishes.
#[derive(Debug, Default)]
struct ExecStats {
    nodes_visited: u64,
    edges_traversed: u64,
}

/// Executes a query.
pub fn execute(graph: &mut PropertyGraph, query: &Query) -> Result<QueryOutput, ExecError> {
    match query {
        Query::Create { pattern } => execute_create(graph, pattern),
        Query::Match {
            patterns,
            where_clause,
            ret,
            distinct,
            order_by,
            limit,
        } => {
            let mut stats = ExecStats::default();
            let result = execute_match(
                graph,
                patterns,
                where_clause.as_ref(),
                ret,
                *distinct,
                order_by.as_ref(),
                *limit,
                &mut stats,
            );
            create_obs::record_graph_exec(stats.nodes_visited, stats.edges_traversed);
            result
        }
    }
}

fn execute_create(
    graph: &mut PropertyGraph,
    pattern: &PathPattern,
) -> Result<QueryOutput, ExecError> {
    let mut created_nodes = 0usize;
    let mut created_edges = 0usize;
    let mut prev = graph.create_node(
        pattern.start.labels.iter().cloned(),
        pattern.start.props.clone(),
    );
    created_nodes += 1;
    for (rel, node) in &pattern.hops {
        let rel_type = rel
            .rel_type
            .clone()
            .ok_or_else(|| ExecError::InvalidCreate("CREATE edges need a type".to_string()))?;
        let next = graph.create_node(node.labels.iter().cloned(), node.props.clone());
        created_nodes += 1;
        match rel.direction {
            Direction::Out | Direction::Both => {
                graph.create_edge(prev, next, rel_type, rel.props.clone());
            }
            Direction::In => {
                graph.create_edge(next, prev, rel_type, rel.props.clone());
            }
        }
        created_edges += 1;
        prev = next;
    }
    Ok(QueryOutput {
        columns: vec!["nodes_created".to_string(), "edges_created".to_string()],
        rows: vec![vec![
            ResultValue::Value(Value::Number(created_nodes as f64)),
            ResultValue::Value(Value::Number(created_edges as f64)),
        ]],
    })
}

fn node_matches(graph: &PropertyGraph, id: NodeId, pattern: &NodePattern) -> bool {
    let node = graph.node(id).expect("candidate exists");
    pattern
        .labels
        .iter()
        .all(|l| node.labels.iter().any(|nl| nl == l))
        && pattern
            .props
            .iter()
            .all(|(k, v)| node.props.get(k) == Some(v))
}

fn seed_candidates(
    graph: &PropertyGraph,
    pattern: &NodePattern,
    stats: &mut ExecStats,
) -> Vec<NodeId> {
    // Best index: (label, prop) pair; then label; then full scan.
    let candidates: Vec<NodeId> = if let Some(label) = pattern.labels.first() {
        if let Some((k, v)) = pattern.props.first() {
            graph.nodes_with_prop(label, k, v)
        } else {
            graph.nodes_with_label(label)
        }
    } else {
        graph.nodes().map(|n| n.id).collect()
    };
    stats.nodes_visited += candidates.len() as u64;
    candidates
        .into_iter()
        .filter(|&id| node_matches(graph, id, pattern))
        .collect()
}

fn bind_node(bindings: &mut Bindings, var: &Option<String>, id: NodeId) -> bool {
    if let Some(name) = var {
        match bindings.get(name) {
            Some(Binding::Node(existing)) => return *existing == id,
            Some(_) => return false,
            None => {
                bindings.insert(name.clone(), Binding::Node(id));
            }
        }
    }
    true
}

/// Recursively matches the hop list starting from `current`.
fn match_hops(
    graph: &PropertyGraph,
    current: NodeId,
    hops: &[(RelPattern, NodePattern)],
    bindings: &Bindings,
    out: &mut Vec<Bindings>,
    stats: &mut ExecStats,
) {
    let Some(((rel, node), rest)) = hops.split_first() else {
        out.push(bindings.clone());
        return;
    };
    let mut candidates: Vec<(EdgeId, NodeId)> = Vec::new();
    if matches!(rel.direction, Direction::Out | Direction::Both) {
        for e in graph.outgoing(current) {
            candidates.push((e.id, e.target));
        }
    }
    if matches!(rel.direction, Direction::In | Direction::Both) {
        for e in graph.incoming(current) {
            candidates.push((e.id, e.source));
        }
    }
    stats.edges_traversed += candidates.len() as u64;
    for (edge_id, next_node) in candidates {
        let edge = graph.edge(edge_id).expect("edge exists");
        if let Some(required) = &rel.rel_type {
            if &edge.rel_type != required {
                continue;
            }
        }
        if !rel.props.iter().all(|(k, v)| edge.props.get(k) == Some(v)) {
            continue;
        }
        if !node_matches(graph, next_node, node) {
            continue;
        }
        let mut next_bindings = bindings.clone();
        if let Some(rvar) = &rel.var {
            match next_bindings.get(rvar) {
                Some(Binding::Edge(existing)) if *existing == edge_id => {}
                Some(_) => continue,
                None => {
                    next_bindings.insert(rvar.clone(), Binding::Edge(edge_id));
                }
            }
        }
        if !bind_node(&mut next_bindings, &node.var, next_node) {
            continue;
        }
        stats.nodes_visited += 1;
        match_hops(graph, next_node, rest, &next_bindings, out, stats);
    }
}

fn match_pattern(
    graph: &PropertyGraph,
    pattern: &PathPattern,
    seeds: &[Bindings],
    stats: &mut ExecStats,
) -> Vec<Bindings> {
    let mut results = Vec::new();
    for base in seeds {
        // If the start var is already bound, restrict to it.
        let candidates: Vec<NodeId> = match pattern.start.var.as_ref().and_then(|v| base.get(v)) {
            Some(Binding::Node(id)) if node_matches(graph, *id, &pattern.start) => vec![*id],
            Some(_) => Vec::new(),
            None => seed_candidates(graph, &pattern.start, stats),
        };
        for start in candidates {
            let mut bindings = base.clone();
            if !bind_node(&mut bindings, &pattern.start.var, start) {
                continue;
            }
            match_hops(graph, start, &pattern.hops, &bindings, &mut results, stats);
        }
    }
    results
}

fn prop_of(graph: &PropertyGraph, binding: Binding, key: &str) -> Value {
    match binding {
        Binding::Node(id) => graph
            .node(id)
            .and_then(|n| n.props.get(key).cloned())
            .unwrap_or(Value::Null),
        Binding::Edge(id) => {
            let edge = graph.edge(id).expect("bound edge exists");
            if key == "type" {
                Value::String(edge.rel_type.clone())
            } else {
                edge.props.get(key).cloned().unwrap_or(Value::Null)
            }
        }
    }
}

fn eval_expr(graph: &PropertyGraph, expr: &Expr, bindings: &Bindings) -> Result<bool, ExecError> {
    match expr {
        Expr::And(a, b) => Ok(eval_expr(graph, a, bindings)? && eval_expr(graph, b, bindings)?),
        Expr::Or(a, b) => Ok(eval_expr(graph, a, bindings)? || eval_expr(graph, b, bindings)?),
        Expr::Not(inner) => Ok(!eval_expr(graph, inner, bindings)?),
        Expr::Cmp {
            var,
            key,
            op,
            value,
        } => {
            let binding = *bindings
                .get(var)
                .ok_or_else(|| ExecError::UnboundVariable(var.clone()))?;
            let actual = prop_of(graph, binding, key);
            Ok(compare(&actual, *op, value))
        }
    }
}

fn compare(actual: &Value, op: CmpOp, expected: &Value) -> bool {
    match op {
        CmpOp::Eq => actual == expected,
        CmpOp::Ne => actual != expected,
        CmpOp::Contains => match (actual, expected) {
            (Value::String(a), Value::String(b)) => a.to_lowercase().contains(&b.to_lowercase()),
            _ => false,
        },
        numeric => match (actual.as_f64(), expected.as_f64()) {
            (Some(a), Some(b)) => match numeric {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!("handled above"),
            },
            _ => false,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_match(
    graph: &PropertyGraph,
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    ret: &[ReturnItem],
    distinct: bool,
    order_by: Option<&(String, String, bool)>,
    limit: Option<usize>,
    stats: &mut ExecStats,
) -> Result<QueryOutput, ExecError> {
    let mut bindings: Vec<Bindings> = vec![Bindings::new()];
    for pattern in patterns {
        bindings = match_pattern(graph, pattern, &bindings, stats);
        if bindings.is_empty() {
            break;
        }
    }
    let mut filtered = Vec::new();
    for b in bindings {
        match where_clause {
            Some(expr) => {
                if eval_expr(graph, expr, &b)? {
                    filtered.push(b);
                }
            }
            None => filtered.push(b),
        }
    }
    if let Some((var, key, descending)) = order_by {
        // Sort bindings by the projected property; missing values sort
        // last in either direction. Numbers compare numerically, strings
        // lexicographically, mixed values by their JSON rendering.
        let mut keyed: Vec<(Option<Value>, Bindings)> = Vec::with_capacity(filtered.len());
        for b in filtered {
            let sort_value = b
                .get(var)
                .map(|binding| prop_of(graph, *binding, key))
                .filter(|v| !v.is_null());
            keyed.push((sort_value, b));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            let ord = match (a, b) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (Some(_), None) => std::cmp::Ordering::Less,
                (Some(x), Some(y)) => match (x.as_f64(), y.as_f64()) {
                    (Some(nx), Some(ny)) => {
                        nx.partial_cmp(&ny).unwrap_or(std::cmp::Ordering::Equal)
                    }
                    _ => x.to_json().cmp(&y.to_json()),
                },
            };
            // Missing values stay last regardless of direction.
            if *descending && a.is_some() && b.is_some() {
                ord.reverse()
            } else {
                ord
            }
        });
        filtered = keyed.into_iter().map(|(_, b)| b).collect();
    }

    let columns: Vec<String> = ret
        .iter()
        .map(|item| match item {
            ReturnItem::Var(v) => v.clone(),
            ReturnItem::Prop(v, k) => format!("{v}.{k}"),
            ReturnItem::CountStar => "COUNT(*)".to_string(),
        })
        .collect();

    if ret.iter().any(|r| matches!(r, ReturnItem::CountStar)) {
        return Ok(QueryOutput {
            columns,
            rows: vec![vec![ResultValue::Value(Value::Number(
                filtered.len() as f64
            ))]],
        });
    }

    let mut rows = Vec::new();
    let mut seen_rows: std::collections::HashSet<String> = std::collections::HashSet::new();
    for b in filtered {
        let mut row = Vec::with_capacity(ret.len());
        for item in ret {
            match item {
                ReturnItem::Var(v) => {
                    let binding = b
                        .get(v)
                        .ok_or_else(|| ExecError::UnboundVariable(v.clone()))?;
                    row.push(match binding {
                        Binding::Node(id) => ResultValue::Node(*id),
                        Binding::Edge(id) => ResultValue::Edge(*id),
                    });
                }
                ReturnItem::Prop(v, k) => {
                    let binding = *b
                        .get(v)
                        .ok_or_else(|| ExecError::UnboundVariable(v.clone()))?;
                    row.push(ResultValue::Value(prop_of(graph, binding, k)));
                }
                ReturnItem::CountStar => unreachable!("handled above"),
            }
        }
        if distinct {
            let fingerprint = format!("{row:?}");
            if !seen_rows.insert(fingerprint) {
                continue;
            }
        }
        rows.push(row);
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
    }
    Ok(QueryOutput { columns, rows })
}

/// Parses and executes a query string — the "via cypher query" entry point.
///
/// ```
/// use create_graphdb::{PropertyGraph, exec::run};
/// let mut g = PropertyGraph::new();
/// run(&mut g, "CREATE (a:Concept {label: 'fever'})-[:BEFORE]->(b:Concept {label: 'death'})").unwrap();
/// let out = run(&mut g, "MATCH (a)-[:BEFORE]->(b) RETURN a.label, b.label").unwrap();
/// assert_eq!(out.rows.len(), 1);
/// ```
pub fn run(graph: &mut PropertyGraph, query: &str) -> Result<QueryOutput, String> {
    let parsed = crate::parser::parse_query(query).map_err(|e| e.to_string())?;
    execute(graph, &parsed).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let s = |x: &str| Value::String(x.to_string());
        let fever = g.create_node(
            ["Concept"],
            vec![("label", s("fever")), ("entityType", s("Sign_symptom"))],
        );
        let cough = g.create_node(
            ["Concept"],
            vec![("label", s("cough")), ("entityType", s("Sign_symptom"))],
        );
        let death = g.create_node(
            ["Concept"],
            vec![("label", s("died")), ("entityType", s("Outcome"))],
        );
        let r1 = g.create_node(
            ["Report"],
            vec![("reportId", s("pmid:1")), ("year", Value::Number(2020.0))],
        );
        let r2 = g.create_node(
            ["Report"],
            vec![("reportId", s("pmid:2")), ("year", Value::Number(2015.0))],
        );
        g.create_edge::<&str>(fever, cough, "OVERLAP", vec![]);
        g.create_edge::<&str>(cough, death, "BEFORE", vec![]);
        g.create_edge::<&str>(r1, fever, "MENTIONS", vec![]);
        g.create_edge::<&str>(r1, cough, "MENTIONS", vec![]);
        g.create_edge::<&str>(r2, cough, "MENTIONS", vec![]);
        g
    }

    fn run_q(g: &mut PropertyGraph, q: &str) -> QueryOutput {
        let parsed = parse_query(q).unwrap();
        execute(g, &parsed).unwrap()
    }

    #[test]
    fn match_by_label() {
        let mut g = sample_graph();
        let out = run_q(&mut g, "MATCH (c:Concept) RETURN c");
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn match_by_property() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (c:Concept {label: 'fever'}) RETURN c.entityType",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("Sign_symptom".into()))
        );
    }

    #[test]
    fn match_one_hop() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (a:Concept {label: 'fever'})-[:OVERLAP]->(b) RETURN b.label",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("cough".into()))
        );
    }

    #[test]
    fn match_two_hops_finds_temporal_chain() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (a:Concept {label: 'fever'})-[:OVERLAP]->(b)-[:BEFORE]->(c) RETURN c.label",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("died".into()))
        );
    }

    #[test]
    fn incoming_direction() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (c:Concept {label: 'cough'})<-[:MENTIONS]-(r:Report) RETURN r.reportId",
        );
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn undirected_matches_both() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (c:Concept {label: 'cough'})-[:OVERLAP]-(x) RETURN x.label",
        );
        assert_eq!(out.rows.len(), 1); // fever via incoming
    }

    #[test]
    fn where_filters_rows() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (r:Report) WHERE r.year >= 2018 RETURN r.reportId",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("pmid:1".into()))
        );
    }

    #[test]
    fn where_contains() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (c:Concept) WHERE c.label CONTAINS 'FEV' RETURN c.label",
        );
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn count_star() {
        let mut g = sample_graph();
        let out = run_q(&mut g, "MATCH (c:Concept) RETURN COUNT(*)");
        assert_eq!(out.rows[0][0], ResultValue::Value(Value::Number(3.0)));
    }

    #[test]
    fn limit_caps_rows() {
        let mut g = sample_graph();
        let out = run_q(&mut g, "MATCH (c:Concept) RETURN c LIMIT 2");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn multi_pattern_join_on_shared_variable() {
        let mut g = sample_graph();
        // Reports mentioning both fever and cough.
        let out = run_q(
            &mut g,
            "MATCH (r:Report)-[:MENTIONS]->(a:Concept {label: 'fever'}), (r)-[:MENTIONS]->(b:Concept {label: 'cough'}) RETURN r.reportId",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("pmid:1".into()))
        );
    }

    #[test]
    fn relationship_variable_projects_type() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (a:Concept {label: 'cough'})-[r:BEFORE]->(b) RETURN r.type",
        );
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("BEFORE".into()))
        );
    }

    #[test]
    fn create_builds_nodes_and_edges() {
        let mut g = PropertyGraph::new();
        let out = run_q(
            &mut g,
            "CREATE (a:Concept {label: 'fever'})-[:BEFORE]->(b:Concept {label: 'death'})",
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(out.columns, vec!["nodes_created", "edges_created"]);
        let found = run_q(&mut g, "MATCH (a)-[:BEFORE]->(b) RETURN a.label, b.label");
        assert_eq!(found.rows.len(), 1);
    }

    #[test]
    fn unbound_variable_is_error() {
        let mut g = sample_graph();
        let parsed = parse_query("MATCH (a:Concept) RETURN z").unwrap();
        assert!(matches!(
            execute(&mut g, &parsed),
            Err(ExecError::UnboundVariable(_))
        ));
    }

    #[test]
    fn no_match_returns_empty() {
        let mut g = sample_graph();
        let out = run_q(&mut g, "MATCH (c:Concept {label: 'nothing'}) RETURN c");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn order_by_sorts_numeric_and_string() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (r:Report) RETURN r.reportId ORDER BY r.year DESC",
        );
        assert_eq!(
            out.rows[0][0],
            ResultValue::Value(Value::String("pmid:1".into())),
            "2020 should sort before 2015 descending"
        );
        let out = run_q(&mut g, "MATCH (c:Concept) RETURN c.label ORDER BY c.label");
        let labels: Vec<String> = out
            .rows
            .iter()
            .map(|r| match &r[0] {
                ResultValue::Value(Value::String(s)) => s.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn order_by_with_limit_takes_top() {
        let mut g = sample_graph();
        let out = run_q(
            &mut g,
            "MATCH (r:Report) RETURN r.year ORDER BY r.year DESC LIMIT 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], ResultValue::Value(Value::Number(2020.0)));
    }

    #[test]
    fn distinct_dedupes_rows() {
        let mut g = sample_graph();
        // Each concept's entityType appears multiple times without DISTINCT.
        let plain = run_q(&mut g, "MATCH (c:Concept) RETURN c.entityType");
        let distinct = run_q(&mut g, "MATCH (c:Concept) RETURN DISTINCT c.entityType");
        assert_eq!(plain.rows.len(), 3);
        assert_eq!(distinct.rows.len(), 2); // Sign_symptom, Outcome
    }

    #[test]
    fn order_by_rejects_missing_by() {
        let mut g = sample_graph();
        assert!(run(&mut g, "MATCH (r:Report) RETURN r ORDER r.year").is_err());
    }

    #[test]
    fn run_helper_reports_parse_errors() {
        let mut g = sample_graph();
        assert!(run(&mut g, "NOT A QUERY").is_err());
        assert!(run(&mut g, "MATCH (c:Concept) RETURN COUNT(*)").is_ok());
    }
}
