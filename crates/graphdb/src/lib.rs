//! Property-graph database substrate (the reproduction's Neo4j).
//!
//! Section III-D: "In Neo4j, data is saved as a graph of nodes and edges …
//! A particular node will contain a nodeId, a label and an entityType …
//! all nodes and edges are put into Neo4j via cypher query." This crate
//! implements that role from scratch:
//!
//! * [`store`] — the property graph: labeled nodes/edges with JSON
//!   property maps, label and property indexes, adjacency lists;
//! * [`ast`], [`lexer`], [`parser`] — a Cypher-like query language
//!   (`MATCH (a:Label {k: v})-[r:TYPE]->(b) WHERE … RETURN … LIMIT n`,
//!   plus `CREATE`);
//! * [`exec`] — the backtracking pattern-match executor.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod store;

pub use exec::{QueryOutput, ResultValue};
pub use parser::parse_query;
pub use store::{EdgeId, NodeId, PropertyGraph};
