//! Abstract syntax of the Cypher-like query language.

use create_docstore::Value;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `MATCH <patterns> [WHERE <expr>] RETURN [DISTINCT] <items>
    /// [ORDER BY var.prop [DESC]] [LIMIT n]`
    Match {
        /// Comma-separated path patterns, joined on shared variables.
        patterns: Vec<PathPattern>,
        /// Optional filter.
        where_clause: Option<Expr>,
        /// Projection.
        ret: Vec<ReturnItem>,
        /// Deduplicate projected rows.
        distinct: bool,
        /// Sort key `(var, prop, descending)`.
        order_by: Option<(String, String, bool)>,
        /// Row limit.
        limit: Option<usize>,
    },
    /// `CREATE <pattern>` — creates the nodes/edges of one path pattern.
    Create {
        /// The pattern to instantiate.
        pattern: PathPattern,
    },
}

/// A linear path: `(a)-[r:T]->(b)<-[:U]-(c) …`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// First node.
    pub start: NodePattern,
    /// Subsequent `(relationship, node)` hops.
    pub hops: Vec<(RelPattern, NodePattern)>,
}

/// Direction of a relationship pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Out,
    /// `<-[..]-`
    In,
    /// `-[..]-`
    Both,
}

/// `(var:Label {key: value, …})`
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Binding variable.
    pub var: Option<String>,
    /// Required labels.
    pub labels: Vec<String>,
    /// Required property equalities.
    pub props: Vec<(String, Value)>,
}

/// `-[var:TYPE {key: value}]->`
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Binding variable.
    pub var: Option<String>,
    /// Required relationship type.
    pub rel_type: Option<String>,
    /// Required property equalities.
    pub props: Vec<(String, Value)>,
    /// Direction.
    pub direction: Direction,
}

/// A boolean filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `var.prop <op> literal`
    Cmp {
        /// Variable name.
        var: String,
        /// Property key.
        key: String,
        /// Operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `CONTAINS` (case-insensitive substring on strings)
    Contains,
}

/// A projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// A bound variable (node or relationship).
    Var(String),
    /// `var.prop`
    Prop(String, String),
    /// `COUNT(*)`
    CountStar,
}
