//! Recursive-descent parser for the Cypher-like language.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok};
use create_docstore::Value;
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Grammar violation.
    Syntax(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let toks = lex(input).map_err(ParseError::Lex)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    if p.pos != p.toks.len() {
        return Err(ParseError::Syntax(format!(
            "unexpected trailing tokens at {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == *t => Ok(()),
            got => Err(ParseError::Syntax(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(ParseError::Syntax(format!(
                "expected identifier, got {got:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        if self.keyword("MATCH") {
            let mut patterns = vec![self.path_pattern()?];
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.bump();
                patterns.push(self.path_pattern()?);
            }
            let where_clause = if self.keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            if !self.keyword("RETURN") {
                return Err(ParseError::Syntax("MATCH requires RETURN".to_string()));
            }
            let distinct = self.keyword("DISTINCT");
            let mut ret = vec![self.return_item()?];
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.bump();
                ret.push(self.return_item()?);
            }
            let order_by = if self.keyword("ORDER") {
                if !self.keyword("BY") {
                    return Err(ParseError::Syntax("ORDER requires BY".to_string()));
                }
                let var = self.ident()?;
                self.expect(&Tok::Dot)?;
                let key = self.ident()?;
                let descending = if self.keyword("DESC") {
                    true
                } else {
                    self.keyword("ASC");
                    false
                };
                Some((var, key, descending))
            } else {
                None
            };
            let limit = if self.keyword("LIMIT") {
                match self.bump() {
                    Some(Tok::Num(n)) if n >= 0.0 => Some(n as usize),
                    got => {
                        return Err(ParseError::Syntax(format!(
                            "LIMIT requires a non-negative number, got {got:?}"
                        )))
                    }
                }
            } else {
                None
            };
            Ok(Query::Match {
                patterns,
                where_clause,
                ret,
                distinct,
                order_by,
                limit,
            })
        } else if self.keyword("CREATE") {
            Ok(Query::Create {
                pattern: self.path_pattern()?,
            })
        } else {
            Err(ParseError::Syntax(
                "query must start with MATCH or CREATE".to_string(),
            ))
        }
    }

    fn path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        let start = self.node_pattern()?;
        let mut hops = Vec::new();
        loop {
            let direction_in = match self.peek() {
                Some(Tok::Dash) => false,
                Some(Tok::ArrowLeft) => true,
                _ => break,
            };
            self.bump();
            let mut rel = RelPattern {
                var: None,
                rel_type: None,
                props: Vec::new(),
                direction: Direction::Both,
            };
            if matches!(self.peek(), Some(Tok::LBracket)) {
                self.bump();
                // [var? :TYPE? {props}?]
                if let Some(Tok::Ident(_)) = self.peek() {
                    rel.var = Some(self.ident()?);
                }
                if matches!(self.peek(), Some(Tok::Colon)) {
                    self.bump();
                    rel.rel_type = Some(self.ident()?);
                }
                if matches!(self.peek(), Some(Tok::LBrace)) {
                    rel.props = self.prop_map()?;
                }
                self.expect(&Tok::RBracket)?;
            }
            // Closing direction.
            rel.direction = match (direction_in, self.peek()) {
                (true, Some(Tok::Dash)) => {
                    self.bump();
                    Direction::In
                }
                (false, Some(Tok::ArrowRight)) => {
                    self.bump();
                    Direction::Out
                }
                (false, Some(Tok::Dash)) => {
                    self.bump();
                    Direction::Both
                }
                (_, got) => {
                    return Err(ParseError::Syntax(format!(
                        "bad relationship direction near {got:?}"
                    )))
                }
            };
            let node = self.node_pattern()?;
            hops.push((rel, node));
        }
        Ok(PathPattern { start, hops })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut node = NodePattern::default();
        if let Some(Tok::Ident(_)) = self.peek() {
            node.var = Some(self.ident()?);
        }
        while matches!(self.peek(), Some(Tok::Colon)) {
            self.bump();
            node.labels.push(self.ident()?);
        }
        if matches!(self.peek(), Some(Tok::LBrace)) {
            node.props = self.prop_map()?;
        }
        self.expect(&Tok::RParen)?;
        Ok(node)
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Value)>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut props = Vec::new();
        if matches!(self.peek(), Some(Tok::RBrace)) {
            self.bump();
            return Ok(props);
        }
        loop {
            let key = self.ident()?;
            self.expect(&Tok::Colon)?;
            props.push((key, self.literal()?));
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBrace) => break,
                got => {
                    return Err(ParseError::Syntax(format!(
                        "expected ',' or '}}' in property map, got {got:?}"
                    )))
                }
            }
        }
        Ok(props)
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Value::String(s)),
            Some(Tok::Num(n)) => Ok(Value::Number(n)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            got => Err(ParseError::Syntax(format!("expected literal, got {got:?}"))),
        }
    }

    fn return_item(&mut self) -> Result<ReturnItem, ParseError> {
        if self.peek_keyword("COUNT") {
            self.bump();
            self.expect(&Tok::LParen)?;
            self.expect(&Tok::Star)?;
            self.expect(&Tok::RParen)?;
            return Ok(ReturnItem::CountStar);
        }
        let var = self.ident()?;
        if matches!(self.peek(), Some(Tok::Dot)) {
            self.bump();
            let key = self.ident()?;
            Ok(ReturnItem::Prop(var, key))
        } else {
            Ok(ReturnItem::Var(var))
        }
    }

    /// expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.keyword("AND") {
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.bump();
            let inner = self.expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        // var.key op literal
        let var = self.ident()?;
        self.expect(&Tok::Dot)?;
        let key = self.ident()?;
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("CONTAINS") => CmpOp::Contains,
            got => {
                return Err(ParseError::Syntax(format!(
                    "expected operator, got {got:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(Expr::Cmp {
            var,
            key,
            op,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_match() {
        let q = parse_query("MATCH (a:Concept) RETURN a").unwrap();
        match q {
            Query::Match { patterns, ret, .. } => {
                assert_eq!(patterns.len(), 1);
                assert_eq!(patterns[0].start.labels, vec!["Concept"]);
                assert_eq!(ret, vec![ReturnItem::Var("a".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_relationship_pattern() {
        let q = parse_query(
            "MATCH (a:Concept {label: 'fever'})-[r:BEFORE]->(b:Concept) RETURN a, r, b.label LIMIT 5",
        )
        .unwrap();
        let Query::Match {
            patterns,
            ret,
            limit,
            ..
        } = q
        else {
            panic!()
        };
        let p = &patterns[0];
        assert_eq!(
            p.start.props,
            vec![("label".to_string(), Value::String("fever".into()))]
        );
        assert_eq!(p.hops.len(), 1);
        assert_eq!(p.hops[0].0.rel_type.as_deref(), Some("BEFORE"));
        assert_eq!(p.hops[0].0.direction, Direction::Out);
        assert_eq!(ret.len(), 3);
        assert_eq!(limit, Some(5));
    }

    #[test]
    fn parses_incoming_and_undirected() {
        let q = parse_query("MATCH (a)<-[:MENTIONS]-(b)-[x]-(c) RETURN a").unwrap();
        let Query::Match { patterns, .. } = q else {
            panic!()
        };
        assert_eq!(patterns[0].hops[0].0.direction, Direction::In);
        assert_eq!(patterns[0].hops[1].0.direction, Direction::Both);
        assert_eq!(patterns[0].hops[1].0.var.as_deref(), Some("x"));
    }

    #[test]
    fn parses_where_clause() {
        let q = parse_query(
            "MATCH (a:Report) WHERE a.year >= 2019 AND NOT a.title CONTAINS 'rare' RETURN a",
        )
        .unwrap();
        let Query::Match { where_clause, .. } = q else {
            panic!()
        };
        let Some(Expr::And(left, right)) = where_clause else {
            panic!("expected AND")
        };
        assert!(matches!(*left, Expr::Cmp { op: CmpOp::Ge, .. }));
        assert!(matches!(*right, Expr::Not(_)));
    }

    #[test]
    fn parses_or_precedence() {
        let q = parse_query("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND a.z = 3 RETURN a").unwrap();
        let Query::Match {
            where_clause: Some(e),
            ..
        } = q
        else {
            panic!()
        };
        // AND binds tighter: Or(x=1, And(y=2, z=3)).
        assert!(matches!(e, Expr::Or(_, _)));
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("MATCH (a:Concept) RETURN COUNT(*)").unwrap();
        let Query::Match { ret, .. } = q else {
            panic!()
        };
        assert_eq!(ret, vec![ReturnItem::CountStar]);
    }

    #[test]
    fn parses_create() {
        let q =
            parse_query("CREATE (n:Concept {label: 'fever', entityType: 'Sign_symptom'})").unwrap();
        let Query::Create { pattern } = q else {
            panic!()
        };
        assert_eq!(pattern.start.labels, vec!["Concept"]);
        assert_eq!(pattern.start.props.len(), 2);
    }

    #[test]
    fn parses_multi_pattern_match() {
        let q = parse_query("MATCH (a:Concept), (b:Concept) WHERE a.x = 1 RETURN a, b").unwrap();
        let Query::Match { patterns, .. } = q else {
            panic!()
        };
        assert_eq!(patterns.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "SELECT * FROM x",
            "MATCH (a RETURN a",
            "MATCH (a) RETURN",
            "MATCH (a) WHERE a. RETURN a",
            "MATCH (a) RETURN a LIMIT x",
            "MATCH (a)->(b) RETURN a extra",
        ] {
            assert!(parse_query(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("match (a) return a limit 1").is_ok());
    }
}
