//! The property graph store.
//!
//! Nodes carry labels (e.g. `Concept`, `Report`) and a JSON property map;
//! edges carry a relationship type (e.g. `BEFORE`, `MENTIONS`) and
//! properties. Label and `(label, key, value)` indexes accelerate the
//! pattern-match executor's seed lookups; adjacency lists drive expansion.

use create_docstore::Value;
use create_util::fxhash::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// Edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u64);

/// A stored node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Labels, sorted.
    pub labels: Vec<String>,
    /// Properties.
    pub props: BTreeMap<String, Value>,
}

/// A stored edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Identifier.
    pub id: EdgeId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Relationship type.
    pub rel_type: String,
    /// Properties.
    pub props: BTreeMap<String, Value>,
}

/// The in-memory property graph.
///
/// Nodes, edges, and index posting vectors sit behind `Arc`, so `Clone`
/// is structural sharing: a graph snapshot costs pointer-table copies,
/// never a deep copy of properties. Nodes and edges are append-only
/// (the Cypher executor only ever `CREATE`s), so shared `Arc`s are
/// never mutated; the index vectors append through [`Arc::make_mut`],
/// copying a single vector on first touch after a snapshot was taken.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    nodes: BTreeMap<u64, Arc<Node>>,
    edges: BTreeMap<u64, Arc<Edge>>,
    next_node: u64,
    next_edge: u64,
    /// label → node ids.
    label_index: FxHashMap<String, Arc<Vec<NodeId>>>,
    /// `label \0 key \0 serialized value` → node ids. The three parts
    /// are flattened into one string so ingest can probe with a reused
    /// scratch buffer (a borrowed `&str` lookup) and allocate only for
    /// keys seen for the first time; `\0` cannot occur in any part
    /// (labels and keys are identifiers, the JSON form escapes control
    /// characters), so the flattening is unambiguous.
    prop_index: FxHashMap<String, Arc<Vec<NodeId>>>,
    /// node → outgoing edge ids.
    outgoing: FxHashMap<NodeId, Arc<Vec<EdgeId>>>,
    /// node → incoming edge ids.
    incoming: FxHashMap<NodeId, Arc<Vec<EdgeId>>>,
}

/// Builds the flattened `prop_index` key (see the field's docs).
fn flatten_prop_key(out: &mut String, label: &str, key: &str, value: &Value) {
    out.push_str(label);
    out.push('\0');
    out.push_str(key);
    out.push('\0');
    value.write_json(out);
}

impl PropertyGraph {
    /// Creates an empty graph.
    pub fn new() -> PropertyGraph {
        PropertyGraph::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Creates a node with labels and properties; returns its id.
    pub fn create_node<L, K>(&mut self, labels: L, props: Vec<(K, Value)>) -> NodeId
    where
        L: IntoIterator,
        L::Item: Into<String>,
        K: Into<String>,
    {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let mut label_vec: Vec<String> = labels.into_iter().map(Into::into).collect();
        label_vec.sort();
        label_vec.dedup();
        let props: BTreeMap<String, Value> =
            props.into_iter().map(|(k, v)| (k.into(), v)).collect();
        let mut prop_key = String::new();
        for label in &label_vec {
            match self.label_index.get_mut(label.as_str()) {
                Some(ids) => Arc::make_mut(ids).push(id),
                None => {
                    self.label_index.insert(label.clone(), Arc::new(vec![id]));
                }
            }
            for (k, v) in &props {
                prop_key.clear();
                flatten_prop_key(&mut prop_key, label, k, v);
                match self.prop_index.get_mut(prop_key.as_str()) {
                    Some(ids) => Arc::make_mut(ids).push(id),
                    None => {
                        self.prop_index.insert(prop_key.clone(), Arc::new(vec![id]));
                    }
                }
            }
        }
        self.nodes.insert(
            id.0,
            Arc::new(Node {
                id,
                labels: label_vec,
                props,
            }),
        );
        id
    }

    /// Creates a directed edge; panics if either endpoint is missing.
    pub fn create_edge<K>(
        &mut self,
        source: NodeId,
        target: NodeId,
        rel_type: impl Into<String>,
        props: Vec<(K, Value)>,
    ) -> EdgeId
    where
        K: Into<String>,
    {
        assert!(self.nodes.contains_key(&source.0), "missing source node");
        assert!(self.nodes.contains_key(&target.0), "missing target node");
        let id = EdgeId(self.next_edge);
        self.next_edge += 1;
        self.edges.insert(
            id.0,
            Arc::new(Edge {
                id,
                source,
                target,
                rel_type: rel_type.into(),
                props: props.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            }),
        );
        Arc::make_mut(self.outgoing.entry(source).or_default()).push(id);
        Arc::make_mut(self.incoming.entry(target).or_default()).push(id);
        id
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id.0).map(|n| &**n)
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(&id.0).map(|e| &**e)
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values().map(|n| &**n)
    }

    /// All edges, in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values().map(|e| &**e)
    }

    /// Nodes carrying a label.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.label_index
            .get(label)
            .map(|ids| ids.as_slice().to_vec())
            .unwrap_or_default()
    }

    /// Index lookup: nodes with `label` whose property `key` equals `value`.
    pub fn nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Vec<NodeId> {
        let mut prop_key = String::new();
        flatten_prop_key(&mut prop_key, label, key, value);
        self.prop_index
            .get(prop_key.as_str())
            .map(|ids| ids.as_slice().to_vec())
            .unwrap_or_default()
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, node: NodeId) -> Vec<&Edge> {
        self.outgoing
            .get(&node)
            .map(|ids| ids.iter().map(|e| &*self.edges[&e.0]).collect())
            .unwrap_or_default()
    }

    /// Incoming edges of a node.
    pub fn incoming(&self, node: NodeId) -> Vec<&Edge> {
        self.incoming
            .get(&node)
            .map(|ids| ids.iter().map(|e| &*self.edges[&e.0]).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::String(s.to_string())
    }

    fn tiny() -> (PropertyGraph, NodeId, NodeId, NodeId) {
        let mut g = PropertyGraph::new();
        let fever = g.create_node(
            ["Concept"],
            vec![("label", v("fever")), ("entityType", v("Sign_symptom"))],
        );
        let cough = g.create_node(
            ["Concept"],
            vec![("label", v("cough")), ("entityType", v("Sign_symptom"))],
        );
        let report = g.create_node(["Report"], vec![("reportId", v("pmid:1"))]);
        g.create_edge::<&str>(fever, cough, "OVERLAP", vec![]);
        g.create_edge(
            report,
            fever,
            "MENTIONS",
            vec![("weight", Value::Number(1.0))],
        );
        (g, fever, cough, report)
    }

    #[test]
    fn create_and_lookup() {
        let (g, fever, _, report) = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node(fever).unwrap().props["label"], v("fever"));
        assert_eq!(g.node(report).unwrap().labels, vec!["Report"]);
    }

    #[test]
    fn label_index() {
        let (g, ..) = tiny();
        assert_eq!(g.nodes_with_label("Concept").len(), 2);
        assert_eq!(g.nodes_with_label("Report").len(), 1);
        assert!(g.nodes_with_label("Missing").is_empty());
    }

    #[test]
    fn prop_index() {
        let (g, fever, ..) = tiny();
        let hits = g.nodes_with_prop("Concept", "label", &v("fever"));
        assert_eq!(hits, vec![fever]);
        assert!(g.nodes_with_prop("Concept", "label", &v("nope")).is_empty());
    }

    #[test]
    fn adjacency() {
        let (g, fever, cough, report) = tiny();
        let out: Vec<NodeId> = g.outgoing(fever).iter().map(|e| e.target).collect();
        assert_eq!(out, vec![cough]);
        let inc: Vec<NodeId> = g.incoming(fever).iter().map(|e| e.source).collect();
        assert_eq!(inc, vec![report]);
        assert_eq!(g.outgoing(fever)[0].rel_type, "OVERLAP");
    }

    #[test]
    fn labels_are_sorted_and_deduped() {
        let mut g = PropertyGraph::new();
        let n = g.create_node(["B", "A", "B"], Vec::<(&str, Value)>::new());
        assert_eq!(g.node(n).unwrap().labels, vec!["A", "B"]);
    }

    #[test]
    #[should_panic(expected = "missing source")]
    fn edge_requires_endpoints() {
        let mut g = PropertyGraph::new();
        let n = g.create_node(["X"], Vec::<(&str, Value)>::new());
        g.create_edge::<&str>(NodeId(99), n, "T", vec![]);
    }
}
