//! JSON value model, parser, and serializer.
//!
//! Implemented from scratch because the JSON document model is the document
//! store's core data structure (DESIGN.md: no serde). The parser accepts
//! RFC 8259 JSON: objects, arrays, strings with all escapes including
//! `\uXXXX` and surrogate pairs, numbers, booleans, null. Object key order
//! is preserved via an ordered map so serialized documents are stable.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// All JSON numbers, stored as `f64` (integral values serialize without
    /// a fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps a deterministic key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Returns the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as i64 when it is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.is_finite() => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field access (shallow).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Dot-path access: `get_path("patient.age")` descends through nested
    /// objects; numeric segments index arrays.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Value::Object(m) => m.get(seg)?,
                Value::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Inserts a field, assuming (or making) this value an object.
    /// Panics if called on a non-object.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.as_object_mut()
            .expect("Value::set on non-object")
            .insert(key.into(), value.into());
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serializes compactly into an existing buffer — the allocation-free
    /// form of [`Value::to_json`] for callers that build keys in a loop.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_json(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; store as null like MongoDB's strict mode.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// ```
/// use create_docstore::parse_json;
/// let v = parse_json(r#"{"title": "case report", "year": 2020}"#).unwrap();
/// assert_eq!(v.get("year").unwrap().as_i64(), Some(2020));
/// ```
pub fn parse_json(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {kw})")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the longest run free of terminators and escapes.
            // The input is a `&str` and the delimiters are all ASCII, so
            // a run never splits a multibyte sequence — copying it whole
            // beats the byte-at-a-time loop by an order of magnitude on
            // long report bodies.
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                out.push_str(run);
            }
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("missing low surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code =
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(hi as u32)
                                .ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = (v << 4) | digit as u16;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Builds an object from key/value pairs — the main ergonomic constructor
/// used across the workspace.
///
/// ```
/// use create_docstore::json::obj;
/// let doc = obj([("title", "case 1".into()), ("year", 2020i64.into())]);
/// assert_eq!(doc.get("year").unwrap().as_i64(), Some(2020));
/// ```
pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in pairs {
        map.insert(k.to_string(), v);
    }
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse_json("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(
            parse_json("\"hi\"").unwrap(),
            Value::String("hi".to_string())
        );
    }

    #[test]
    fn parse_nested_structure() {
        let v = parse_json(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get_path("a.2.b"), Some(&Value::Null));
        assert_eq!(v.get_path("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parse_escapes() {
        let v = parse_json(r#""line\nbreak \"quoted\" tab\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nbreak \"quoted\" tab\t");
    }

    #[test]
    fn parse_unicode_escapes_and_surrogates() {
        assert_eq!(parse_json(r#""é""#).unwrap().as_str(), Some("é"));
        // U+1F600 as a surrogate pair.
        assert_eq!(parse_json(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn parse_raw_utf8() {
        let v = parse_json("\"fièvre\"").unwrap();
        assert_eq!(v.as_str(), Some("fièvre"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "\"\\ud800\"",
            "01x",
        ] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"arr":[1,2.5,true,null],"nested":{"s":"x\"y"},"n":-7}"#;
        let v = parse_json(src).unwrap();
        let re = parse_json(&v.to_json()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = obj([
            ("title", "case".into()),
            ("tags", vec!["a", "b"].into()),
            ("empty", Value::object()),
        ]);
        let re = parse_json(&v.to_json_pretty()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(3.25).to_json(), "3.25");
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn control_chars_escaped_on_output() {
        let v = Value::String("\u{01}".to_string());
        assert_eq!(v.to_json(), "\"\\u0001\"");
        assert_eq!(parse_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = obj([("n", 4i64.into()), ("b", true.into())]);
        assert_eq!(v.get("n").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Number(1.5).as_i64(), None);
    }

    #[test]
    fn set_builds_objects() {
        let mut v = Value::object();
        v.set("a", 1i64).set("b", "two");
        assert_eq!(v.to_json(), r#"{"a":1,"b":"two"}"#);
    }

    #[test]
    fn get_path_misses_gracefully() {
        let v = parse_json(r#"{"a": {"b": 1}}"#).unwrap();
        assert!(v.get_path("a.b.c").is_none());
        assert!(v.get_path("x").is_none());
        assert!(v.get_path("a.0").is_none());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_json("{\"a\": tru}").unwrap_err();
        assert!(err.position >= 6);
        assert!(err.to_string().contains("byte"));
    }
}
