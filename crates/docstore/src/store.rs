//! The named-collection store with disk persistence.
//!
//! Plays MongoDB's role in the CREATe architecture (Fig. 3): the persistent
//! source of truth that the backend queries. Collections are persisted as
//! JSONL files (`<collection>.jsonl`, one document per line) under a data
//! directory and reloaded on open. Access is guarded by a `std::sync`
//! `RwLock` per store so the HTTP layer can serve concurrent readers.

use crate::collection::{Collection, CollectionError, Filter, UpdateResult};
use crate::json::{parse_json, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::io::{BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A multi-collection document store.
///
/// Collections sit behind `Arc` so [`DocStore::snapshot`] can hand out a
/// point-in-time [`StoreSnapshot`] by cloning the name → pointer map;
/// writers mutate through [`Arc::make_mut`], copying a collection's
/// structure only when a live snapshot still shares it.
#[derive(Debug)]
pub struct DocStore {
    inner: RwLock<BTreeMap<String, Arc<Collection>>>,
    data_dir: Option<PathBuf>,
}

/// An immutable point-in-time view of every collection.
///
/// Reads need no lock: the snapshot owns `Arc` handles to the
/// collections as they were at [`DocStore::snapshot`] time, so accessors
/// can return borrowed documents instead of cloning them out of a lock.
#[derive(Debug, Default, Clone)]
pub struct StoreSnapshot {
    collections: BTreeMap<String, Arc<Collection>>,
}

impl StoreSnapshot {
    /// Lists collection names.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.keys().cloned().collect()
    }

    /// Fetches a document by id.
    pub fn get(&self, collection: &str, id: &str) -> Option<&Value> {
        self.collections.get(collection)?.get(id)
    }

    /// Runs a filter query, borrowing matches from the snapshot.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<&Value> {
        self.collections
            .get(collection)
            .map(|c| c.find(filter))
            .unwrap_or_default()
    }

    /// First match, if any.
    pub fn find_one(&self, collection: &str, filter: &Filter) -> Option<&Value> {
        self.collections.get(collection)?.find_one(filter)
    }

    /// Counts matches.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.collections
            .get(collection)
            .map(|c| c.count(filter))
            .unwrap_or(0)
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A persisted line failed to parse.
    Corrupt {
        /// Collection file involved.
        collection: String,
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Invalid document shape.
    Collection(CollectionError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt {
                collection,
                line,
                message,
            } => write!(f, "corrupt document in {collection} line {line}: {message}"),
            StoreError::Collection(e) => write!(f, "collection error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CollectionError> for StoreError {
    fn from(e: CollectionError) -> Self {
        StoreError::Collection(e)
    }
}

impl DocStore {
    /// Creates a purely in-memory store (no persistence).
    pub fn in_memory() -> DocStore {
        DocStore {
            inner: RwLock::new(BTreeMap::new()),
            data_dir: None,
        }
    }

    /// Opens a store backed by `dir`, loading any existing `*.jsonl`
    /// collection files.
    pub fn open(dir: impl AsRef<Path>) -> Result<DocStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut collections = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            let mut collection = Collection::new();
            let file = std::fs::File::open(&path)?;
            let reader = std::io::BufReader::new(file);
            for (i, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let doc = parse_json(&line).map_err(|e| StoreError::Corrupt {
                    collection: name.clone(),
                    line: i + 1,
                    message: e.to_string(),
                })?;
                collection.insert(doc)?;
            }
            collections.insert(name, Arc::new(collection));
        }
        Ok(DocStore {
            inner: RwLock::new(collections),
            data_dir: Some(dir),
        })
    }

    /// Lists collection names.
    pub fn collection_names(&self) -> Vec<String> {
        self.inner.read().expect("docstore lock poisoned").keys().cloned().collect()
    }

    /// A point-in-time view of every collection (cheap: clones the
    /// name → `Arc` map, not the documents).
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            collections: self.inner.read().expect("docstore lock poisoned").clone(),
        }
    }

    /// Inserts a document, creating the collection on demand. Returns the
    /// assigned id.
    pub fn insert(&self, collection: &str, doc: Value) -> Result<String, StoreError> {
        let mut inner = self.inner.write().expect("docstore lock poisoned");
        let c = Arc::make_mut(inner.entry(collection.to_string()).or_default());
        Ok(c.insert(doc)?)
    }

    /// Fetches a document by id (cloned out of the lock).
    pub fn get(&self, collection: &str, id: &str) -> Option<Value> {
        self.inner.read().expect("docstore lock poisoned").get(collection)?.get(id).cloned()
    }

    /// Runs a filter query, cloning matches out of the lock.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Value> {
        self.inner
            .read()
            .expect("docstore lock poisoned")
            .get(collection)
            .map(|c| c.find(filter).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// First match, if any.
    pub fn find_one(&self, collection: &str, filter: &Filter) -> Option<Value> {
        self.inner.read().expect("docstore lock poisoned").get(collection)?.find_one(filter).cloned()
    }

    /// Counts matches.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.inner
            .read()
            .expect("docstore lock poisoned")
            .get(collection)
            .map(|c| c.count(filter))
            .unwrap_or(0)
    }

    /// Applies a shallow `$set`-style update.
    pub fn update(
        &self,
        collection: &str,
        filter: &Filter,
        set: &Value,
    ) -> Result<UpdateResult, StoreError> {
        let mut inner = self.inner.write().expect("docstore lock poisoned");
        match inner.get_mut(collection) {
            Some(c) => Ok(Arc::make_mut(c).update(filter, set)?),
            None => Ok(UpdateResult {
                matched: 0,
                modified: 0,
            }),
        }
    }

    /// Deletes matching documents; returns the count removed.
    pub fn delete(&self, collection: &str, filter: &Filter) -> usize {
        let mut inner = self.inner.write().expect("docstore lock poisoned");
        inner
            .get_mut(collection)
            .map(|c| Arc::make_mut(c).delete(filter))
            .unwrap_or(0)
    }

    /// Persists every collection to the data directory (no-op for
    /// in-memory stores). Writes are atomic per collection via a temp file
    /// rename.
    pub fn flush(&self) -> Result<(), StoreError> {
        let Some(dir) = &self.data_dir else {
            return Ok(());
        };
        let inner = self.inner.read().expect("docstore lock poisoned");
        for (name, collection) in inner.iter() {
            let tmp = dir.join(format!("{name}.jsonl.tmp"));
            let final_path = dir.join(format!("{name}.jsonl"));
            {
                let file = std::fs::File::create(&tmp)?;
                let mut w = BufWriter::new(file);
                for doc in collection.iter() {
                    writeln!(w, "{}", doc.to_json())?;
                }
                w.flush()?;
            }
            std::fs::rename(&tmp, &final_path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    #[test]
    fn in_memory_crud() {
        let store = DocStore::in_memory();
        let id = store
            .insert("reports", obj([("title", "case".into())]))
            .unwrap();
        assert_eq!(store.count("reports", &Filter::All), 1);
        assert!(store.get("reports", &id).is_some());
        store
            .update("reports", &Filter::All, &obj([("seen", true.into())]))
            .unwrap();
        assert_eq!(
            store
                .get("reports", &id)
                .unwrap()
                .get("seen")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(store.delete("reports", &Filter::All), 1);
        assert_eq!(store.count("reports", &Filter::All), 0);
    }

    #[test]
    fn missing_collection_is_empty() {
        let store = DocStore::in_memory();
        assert_eq!(store.count("nope", &Filter::All), 0);
        assert!(store.find("nope", &Filter::All).is_empty());
        assert_eq!(store.delete("nope", &Filter::All), 0);
    }

    #[test]
    fn flush_and_reload_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "create-docstore-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DocStore::open(&dir).unwrap();
            store
                .insert("reports", obj([("title", "a \"quoted\" title".into())]))
                .unwrap();
            store
                .insert("annotations", obj([("kind", "T1".into())]))
                .unwrap();
            store.flush().unwrap();
        }
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.collection_names(), vec!["annotations", "reports"]);
        assert_eq!(store.count("reports", &Filter::All), 1);
        let doc = store.find_one("reports", &Filter::All).unwrap();
        assert_eq!(
            doc.get("title").unwrap().as_str(),
            Some("a \"quoted\" title")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_reported() {
        let dir = std::env::temp_dir().join(format!(
            "create-docstore-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.jsonl"), "{not json}\n").unwrap();
        let err = DocStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { line: 1, .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers() {
        use std::sync::Arc;
        let store = Arc::new(DocStore::in_memory());
        for i in 0..100 {
            store.insert("r", obj([("n", (i as i64).into())])).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut total = 0;
                for _ in 0..50 {
                    total += s.count("r", &Filter::Gte("n".into(), 50.0));
                }
                total
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 50 * 50);
        }
    }
}
