//! Document store substrate (the reproduction's MongoDB).
//!
//! Section II of the paper: "The majority of data for CREATe is stored in
//! the MongoDB server for persistency" and is queried through the backend.
//! This crate implements that role from scratch:
//!
//! * [`json`] — a JSON value model with a full parser and serializer (no
//!   external serialization crates; the document model *is* the substrate);
//! * [`collection`] — schemaless collections with Mongo-style filters
//!   (equality, ranges, `$in`-style membership, conjunction/disjunction)
//!   over dot-separated field paths;
//! * [`store`] — a named-collection store with JSONL disk persistence and
//!   reload.

pub mod collection;
pub mod json;
pub mod store;

pub use collection::{Collection, Filter, UpdateResult};
pub use json::{parse_json, JsonError, Value};
pub use store::{DocStore, StoreSnapshot};
