//! Schemaless document collections with Mongo-style filters.
//!
//! A collection stores JSON object documents keyed by a string `_id`
//! (auto-assigned when absent). Queries use the [`Filter`] combinator tree,
//! which mirrors the subset of MongoDB's query language that the CREATe
//! backend needs: field equality and comparisons over dot paths, substring
//! and membership tests, and boolean combinators.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A query predicate over documents.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field at dot-path equals the given value (number equality is exact).
    Eq(String, Value),
    /// Field does not equal the value (missing fields match, as in Mongo).
    Ne(String, Value),
    /// Field is a number greater than the operand.
    Gt(String, f64),
    /// Field is a number greater than or equal to the operand.
    Gte(String, f64),
    /// Field is a number smaller than the operand.
    Lt(String, f64),
    /// Field is a number smaller than or equal to the operand.
    Lte(String, f64),
    /// Field value is one of the listed values (`$in`).
    In(String, Vec<Value>),
    /// Field is a string containing the operand as a substring
    /// (case-insensitive), or an array containing a matching string.
    Contains(String, String),
    /// Field exists (is present and non-null).
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Field-equality convenience.
    pub fn eq(path: &str, value: impl Into<Value>) -> Filter {
        Filter::Eq(path.to_string(), value.into())
    }

    /// Case-insensitive substring convenience.
    pub fn contains(path: &str, needle: &str) -> Filter {
        Filter::Contains(path.to_string(), needle.to_string())
    }

    /// Evaluates the predicate against one document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(path, v) => doc.get_path(path) == Some(v),
            Filter::Ne(path, v) => doc.get_path(path) != Some(v),
            Filter::Gt(path, n) => num(doc, path).map(|x| x > *n).unwrap_or(false),
            Filter::Gte(path, n) => num(doc, path).map(|x| x >= *n).unwrap_or(false),
            Filter::Lt(path, n) => num(doc, path).map(|x| x < *n).unwrap_or(false),
            Filter::Lte(path, n) => num(doc, path).map(|x| x <= *n).unwrap_or(false),
            Filter::In(path, options) => doc
                .get_path(path)
                .map(|v| options.contains(v))
                .unwrap_or(false),
            Filter::Contains(path, needle) => match doc.get_path(path) {
                Some(Value::String(s)) => s.to_lowercase().contains(&needle.to_lowercase()),
                Some(Value::Array(items)) => items.iter().any(|item| {
                    item.as_str()
                        .map(|s| s.to_lowercase().contains(&needle.to_lowercase()))
                        .unwrap_or(false)
                }),
                _ => false,
            },
            Filter::Exists(path) => doc.get_path(path).map(|v| !v.is_null()).unwrap_or(false),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }
}

fn num(doc: &Value, path: &str) -> Option<f64> {
    doc.get_path(path).and_then(Value::as_f64)
}

/// Result of an update operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateResult {
    /// Documents that matched the filter.
    pub matched: usize,
    /// Documents actually modified.
    pub modified: usize,
}

/// An in-memory ordered collection of JSON documents.
///
/// Documents sit behind `Arc`, so `Clone` shares them structurally: a
/// snapshot of the collection copies the id → pointer map, never the
/// JSON trees. Mutations go through [`Arc::make_mut`], copying only the
/// touched document when a snapshot still shares it.
#[derive(Debug, Default, Clone)]
pub struct Collection {
    docs: BTreeMap<String, Arc<Value>>,
    next_id: u64,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Collection {
        Collection::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inserts a document. Non-object values are rejected. If the document
    /// has no `_id` string field one is assigned (`doc<N>` with a
    /// zero-padded counter so insertion order and lexicographic order
    /// agree). Returns the id. Inserting an existing id replaces the
    /// document (upsert semantics).
    pub fn insert(&mut self, mut doc: Value) -> Result<String, CollectionError> {
        let map = doc.as_object_mut().ok_or(CollectionError::NotAnObject)?;
        let id = match map.get("_id").and_then(Value::as_str) {
            Some(id) => id.to_string(),
            None => {
                let id = format!("doc{:08}", self.next_id);
                self.next_id += 1;
                map.insert("_id".to_string(), Value::String(id.clone()));
                id
            }
        };
        self.docs.insert(id.clone(), Arc::new(doc));
        Ok(id)
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Option<&Value> {
        self.docs.get(id).map(|d| &**d)
    }

    /// Returns all matching documents in id order.
    pub fn find(&self, filter: &Filter) -> Vec<&Value> {
        self.iter().filter(|d| filter.matches(d)).collect()
    }

    /// Returns the first matching document.
    pub fn find_one(&self, filter: &Filter) -> Option<&Value> {
        self.iter().find(|d| filter.matches(d))
    }

    /// Counts matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.iter().filter(|d| filter.matches(d)).count()
    }

    /// Applies `set` fields (shallow merge of top-level keys) to every
    /// matching document.
    pub fn update(
        &mut self,
        filter: &Filter,
        set: &Value,
    ) -> Result<UpdateResult, CollectionError> {
        let set_map = set.as_object().ok_or(CollectionError::NotAnObject)?;
        let mut matched = 0;
        let mut modified = 0;
        // Same `_id` fast path as `delete`: point updates touch exactly
        // one map entry instead of scanning every document.
        let point_target = match filter {
            Filter::Eq(path, Value::String(id)) if path == "_id" => Some(id.clone()),
            _ => None,
        };
        let docs: &mut dyn Iterator<Item = &mut Arc<Value>> = match &point_target {
            Some(id) => &mut self.docs.get_mut(id).into_iter(),
            None => &mut self.docs.values_mut(),
        };
        for doc in docs {
            if point_target.is_none() && !filter.matches(doc) {
                continue;
            }
            matched += 1;
            let map = Arc::make_mut(doc)
                .as_object_mut()
                .expect("stored docs are objects");
            let mut changed = false;
            for (k, v) in set_map {
                if k == "_id" {
                    continue; // ids are immutable
                }
                if map.get(k) != Some(v) {
                    map.insert(k.clone(), v.clone());
                    changed = true;
                }
            }
            if changed {
                modified += 1;
            }
        }
        Ok(UpdateResult { matched, modified })
    }

    /// Deletes matching documents; returns how many were removed.
    ///
    /// An equality filter on `_id` is answered straight from the id
    /// map (documents are keyed by their `_id`), so point deletes stay
    /// `O(log n)` instead of scanning the collection — the ingest
    /// upsert and crash-recovery paths delete by id in a loop, where a
    /// scan would make reopening a large store quadratic.
    pub fn delete(&mut self, filter: &Filter) -> usize {
        if let Filter::Eq(path, Value::String(id)) = filter {
            if path == "_id" {
                return usize::from(self.docs.remove(id).is_some());
            }
        }
        let ids: Vec<String> = self
            .docs
            .iter()
            .filter(|(_, d)| filter.matches(d))
            .map(|(id, _)| id.clone())
            .collect();
        for id in &ids {
            self.docs.remove(id);
        }
        ids.len()
    }

    /// Iterates documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.docs.values().map(|d| &**d)
    }
}

/// Errors from collection operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionError {
    /// Documents and update specs must be JSON objects.
    NotAnObject,
}

impl std::fmt::Display for CollectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectionError::NotAnObject => write!(f, "value must be a JSON object"),
        }
    }
}

impl std::error::Error for CollectionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn sample() -> Collection {
        let mut c = Collection::new();
        c.insert(obj([
            ("title", "takotsubo after bereavement".into()),
            ("category", "cardiovascular".into()),
            ("year", 2019i64.into()),
            ("tags", vec!["cardiomyopathy", "stress"].into()),
        ]))
        .unwrap();
        c.insert(obj([
            ("title", "COVID-19 with myocarditis".into()),
            ("category", "infectious".into()),
            ("year", 2020i64.into()),
            ("tags", vec!["covid", "myocarditis"].into()),
        ]))
        .unwrap();
        c.insert(obj([
            ("title", "AML presenting as fatigue".into()),
            ("category", "cancer".into()),
            ("year", 2021i64.into()),
        ]))
        .unwrap();
        c
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut c = Collection::new();
        let a = c.insert(Value::object()).unwrap();
        let b = c.insert(Value::object()).unwrap();
        assert!(a < b);
        assert!(c.get(&a).is_some());
    }

    #[test]
    fn insert_rejects_non_objects() {
        let mut c = Collection::new();
        assert_eq!(
            c.insert(Value::Number(1.0)).unwrap_err(),
            CollectionError::NotAnObject
        );
    }

    #[test]
    fn insert_respects_explicit_id_and_upserts() {
        let mut c = Collection::new();
        let id = c
            .insert(obj([("_id", "pmid:123".into()), ("v", 1i64.into())]))
            .unwrap();
        assert_eq!(id, "pmid:123");
        c.insert(obj([("_id", "pmid:123".into()), ("v", 2i64.into())]))
            .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get("pmid:123").unwrap().get("v").unwrap().as_i64(),
            Some(2)
        );
    }

    #[test]
    fn find_eq_and_count() {
        let c = sample();
        assert_eq!(c.count(&Filter::eq("category", "cancer")), 1);
        assert_eq!(c.count(&Filter::All), 3);
        assert_eq!(c.find(&Filter::eq("category", "none")).len(), 0);
    }

    #[test]
    fn range_filters() {
        let c = sample();
        assert_eq!(c.count(&Filter::Gte("year".into(), 2020.0)), 2);
        assert_eq!(c.count(&Filter::Lt("year".into(), 2020.0)), 1);
        // Missing numeric field never matches ranges.
        assert_eq!(c.count(&Filter::Gt("missing".into(), 0.0)), 0);
    }

    #[test]
    fn contains_on_strings_and_arrays() {
        let c = sample();
        assert_eq!(c.count(&Filter::contains("title", "covid")), 1);
        assert_eq!(c.count(&Filter::contains("tags", "myocarditis")), 1);
        assert_eq!(c.count(&Filter::contains("tags", "MYOCARD")), 1);
    }

    #[test]
    fn in_and_exists() {
        let c = sample();
        let f = Filter::In(
            "category".into(),
            vec!["cancer".into(), "infectious".into()],
        );
        assert_eq!(c.count(&f), 2);
        assert_eq!(c.count(&Filter::Exists("tags".into())), 2);
    }

    #[test]
    fn boolean_combinators() {
        let c = sample();
        let f = Filter::And(vec![
            Filter::Gte("year".into(), 2019.0),
            Filter::Not(Box::new(Filter::eq("category", "cancer"))),
        ]);
        assert_eq!(c.count(&f), 2);
        let f = Filter::Or(vec![
            Filter::eq("category", "cancer"),
            Filter::eq("category", "infectious"),
        ]);
        assert_eq!(c.count(&f), 2);
    }

    #[test]
    fn ne_matches_missing_fields() {
        let c = sample();
        // Only two documents have tags; Ne on missing is true (Mongo-like).
        assert_eq!(c.count(&Filter::Ne("tags.0".into(), "covid".into())), 2);
    }

    #[test]
    fn update_sets_fields() {
        let mut c = sample();
        let r = c
            .update(
                &Filter::eq("category", "cardiovascular"),
                &obj([("reviewed", true.into())]),
            )
            .unwrap();
        assert_eq!(
            r,
            UpdateResult {
                matched: 1,
                modified: 1
            }
        );
        let doc = c
            .find_one(&Filter::eq("category", "cardiovascular"))
            .unwrap();
        assert_eq!(doc.get("reviewed").unwrap().as_bool(), Some(true));
        // Idempotent second update modifies nothing.
        let r2 = c
            .update(
                &Filter::eq("category", "cardiovascular"),
                &obj([("reviewed", true.into())]),
            )
            .unwrap();
        assert_eq!(
            r2,
            UpdateResult {
                matched: 1,
                modified: 0
            }
        );
    }

    #[test]
    fn update_cannot_change_id() {
        let mut c = sample();
        let before: Vec<String> = c.iter().map(|d| d.get("_id").unwrap().to_json()).collect();
        c.update(&Filter::All, &obj([("_id", "hacked".into())]))
            .unwrap();
        let after: Vec<String> = c.iter().map(|d| d.get("_id").unwrap().to_json()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn delete_removes_matching() {
        let mut c = sample();
        assert_eq!(c.delete(&Filter::eq("category", "cancer")), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.delete(&Filter::All), 2);
        assert!(c.is_empty());
    }
}
