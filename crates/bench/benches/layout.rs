//! Criterion: force-directed layout and SVG rendering (E7 timing side).

use create_util::Rng;
use create_viz::{render_svg, ForceLayout, LayoutConfig, SvgOptions, VizEdge, VizGraph, VizNode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn random_graph(n: usize, seed: u64) -> (Vec<(usize, usize)>, VizGraph) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push((rng.below(i), i));
    }
    for _ in 0..n / 2 {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    let graph = VizGraph {
        nodes: (0..n)
            .map(|i| VizNode {
                label: format!("event {i}"),
                kind: "Sign_symptom".to_string(),
            })
            .collect(),
        edges: edges
            .iter()
            .map(|&(a, b)| VizEdge {
                source: a,
                target: b,
                label: "BEFORE".to_string(),
            })
            .collect(),
    };
    (edges, graph)
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_layout");
    for &n in &[10usize, 30, 100] {
        let (edges, _) = random_graph(n, 3);
        group.bench_with_input(BenchmarkId::new("run_200_iters", n), &n, |b, &n| {
            b.iter(|| {
                let mut layout = ForceLayout::new(n, edges.clone(), LayoutConfig::default());
                black_box(layout.run())
            })
        });
    }
    group.finish();

    let mut render = c.benchmark_group("svg_render");
    for &n in &[10usize, 50] {
        let (_, graph) = random_graph(n, 4);
        render.bench_with_input(BenchmarkId::new("render_svg", n), &graph, |b, graph| {
            b.iter(|| black_box(render_svg(black_box(graph), &SvgOptions::default())))
        });
    }
    render.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
