//! Criterion: end-to-end system costs (E10) — ingest throughput and full
//! CREATe-IR search latency per merge policy.

use create_bench::{corpus, loaded_create};
use create_core::{Create, CreateConfig, MergePolicy};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_e2e(c: &mut Criterion) {
    let mut ingest = c.benchmark_group("e2e_ingest");
    ingest.sample_size(10);
    let reports = corpus(100, 8);
    ingest.bench_function("ingest_100_gold_reports", |b| {
        b.iter_batched(
            || Create::new(CreateConfig::default()),
            |mut system| {
                for r in &reports {
                    system.ingest_gold(r).expect("ingest");
                }
                black_box(system)
            },
            BatchSize::LargeInput,
        )
    });
    ingest.finish();

    let (system, _) = loaded_create(1_000, 9);
    let queries = [
        "A patient was admitted to the hospital because of fever and cough.",
        "fever before syncope",
        "myocardial infarction treated with aspirin",
        "chest pain",
    ];
    let mut search = c.benchmark_group("e2e_search_1k_docs");
    for policy in [
        MergePolicy::Neo4jFirst,
        MergePolicy::EsOnly,
        MergePolicy::GraphOnly,
    ] {
        search.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(system.search_with_policy(q, 10, policy));
                }
            })
        });
    }
    search.finish();

    let mut parse = c.benchmark_group("query_ie");
    parse.bench_function("parse_paper_query", |b| {
        b.iter(|| black_box(system.parse_query(black_box(queries[0]))))
    });
    parse.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
