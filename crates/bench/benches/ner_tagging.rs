//! Criterion: NER tagging throughput (E2 timing side) — gazetteer vs HMM
//! vs CRF vs CRF+C-FLAIR on held-out sentences.

use create_bench::{corpus, train_tagger};
use create_ner::{FlairFeatures, GazetteerTagger, HmmTagger, LabelSet, NerDataset};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_ner(c: &mut Criterion) {
    let reports = corpus(80, 6);
    let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
    let (train, test) = dataset.split(0.8);
    let sentences: Vec<&str> = test.sentences.iter().map(|s| s.text.as_str()).collect();
    let total_bytes: u64 = sentences.iter().map(|s| s.len() as u64).sum();

    let ontology = Arc::new(create_ontology::clinical_ontology());
    let gaz = GazetteerTagger::new(&ontology, LabelSet::ner_targets());
    let hmm = HmmTagger::train(&train);
    let crf = train_tagger(&train, Some(Arc::clone(&ontology)), None, 3);
    let flair = Arc::new(FlairFeatures::pretrain(&train.raw_text(), 9));
    let crf_flair = train_tagger(&train, Some(Arc::clone(&ontology)), Some(flair), 3);

    let mut group = c.benchmark_group("ner_tagging");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("gazetteer", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(gaz.tag(s));
            }
        })
    });
    group.bench_function("hmm", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(hmm.tag(s));
            }
        })
    });
    group.bench_function("crf", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(crf.tag(s));
            }
        })
    });
    group.bench_function("crf_flair", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(crf_flair.tag(s));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ner);
criterion_main!(benches);
