//! Criterion: analyzer throughput (E8 timing side) — standard vs n-gram
//! chains on clinical prose.

use create_bench::corpus;
use create_text::Analyzer;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_analyzers(c: &mut Criterion) {
    let reports = corpus(50, 1);
    let text: String = reports
        .iter()
        .map(|r| r.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let bytes = text.len() as u64;

    let mut group = c.benchmark_group("analyzers");
    group.throughput(Throughput::Bytes(bytes));
    let standard = Analyzer::clinical_standard();
    group.bench_function("clinical_standard", |b| {
        b.iter(|| black_box(standard.analyze(black_box(&text))))
    });
    let ngram = Analyzer::clinical_ngram();
    group.bench_function("clinical_ngram_3_25", |b| {
        b.iter(|| black_box(ngram.analyze(black_box(&text))))
    });
    let simple = Analyzer::simple();
    group.bench_function("simple", |b| {
        b.iter(|| black_box(simple.analyze(black_box(&text))))
    });
    group.finish();

    let mut sent = c.benchmark_group("sentence_split");
    sent.throughput(Throughput::Bytes(bytes));
    sent.bench_function("split_sentences", |b| {
        b.iter(|| black_box(create_text::split_sentences(black_box(&text))))
    });
    sent.finish();
}

criterion_group!(benches, bench_analyzers);
criterion_main!(benches);
