//! Criterion: inverted-index build and query latency (E4/E10 keyword side).

use create_bench::corpus;
use create_index::{Index, QueryNode, Scorer};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn build_index(n: usize) -> Index {
    let reports = corpus(n, 2);
    let mut index = Index::clinical();
    for r in &reports {
        index
            .add_document(
                &r.id,
                &[
                    ("title", r.title.as_str()),
                    ("body", r.text.as_str()),
                    ("body_ngram", r.text.as_str()),
                ],
            )
            .expect("index");
    }
    index
}

fn bench_index(c: &mut Criterion) {
    let mut build = c.benchmark_group("index_build");
    build.sample_size(10);
    build.bench_function("build_200_docs", |b| {
        let reports = corpus(200, 3);
        b.iter_batched(
            Index::clinical,
            |mut index| {
                for r in &reports {
                    index
                        .add_document(
                            &r.id,
                            &[
                                ("title", r.title.as_str()),
                                ("body", r.text.as_str()),
                                ("body_ngram", r.text.as_str()),
                            ],
                        )
                        .expect("index");
                }
                index
            },
            BatchSize::LargeInput,
        )
    });
    build.finish();

    let index = build_index(1_000);
    let mut search = c.benchmark_group("index_search_1k_docs");
    let term = QueryNode::term("body", "fever");
    search.bench_function("single_term_bm25", |b| {
        b.iter(|| black_box(index.search(black_box(&term), 10, Scorer::default())))
    });
    let multi = QueryNode::query_string(&index, "body", "fever cough chest pain hospital");
    search.bench_function("query_string_5_terms", |b| {
        b.iter(|| black_box(index.search(black_box(&multi), 10, Scorer::default())))
    });
    let phrase = QueryNode::phrase("body", &["chest", "pain"]);
    search.bench_function("phrase", |b| {
        b.iter(|| black_box(index.search(black_box(&phrase), 10, Scorer::default())))
    });
    let fuzzy = QueryNode::fuzzy("body", "amiodaron", 1);
    search.bench_function("fuzzy_edit1", |b| {
        b.iter(|| black_box(index.search(black_box(&fuzzy), 10, Scorer::default())))
    });
    search.bench_function("tfidf_scorer", |b| {
        b.iter(|| black_box(index.search(black_box(&multi), 10, Scorer::TfIdf)))
    });
    search.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
