//! Criterion: property-graph ingest and Cypher/graph-search latency
//! (E4 graph side).

use create_bench::loaded_create;
use create_core::search::GraphSearcher;
use create_graphdb::exec::run;
use create_graphdb::{parse_query, PropertyGraph};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_graph(c: &mut Criterion) {
    let (mut system, _) = loaded_create(500, 5);

    let mut cypher = c.benchmark_group("cypher");
    cypher.bench_function("parse_two_hop_query", |b| {
        b.iter(|| {
            black_box(parse_query(
                "MATCH (a:Concept {label: 'fever'})<-[:MENTIONS]-(r:Report) \
                 WHERE r.year >= 2010 RETURN r.reportId LIMIT 10",
            ))
        })
    });
    cypher.bench_function("exec_mentions_lookup", |b| {
        b.iter(|| {
            black_box(
                run(
                    system.graph_mut(),
                    "MATCH (c:Concept {label: 'fever'})<-[:MENTIONS]-(r:Report) RETURN r.reportId LIMIT 20",
                )
                .expect("query"),
            )
        })
    });
    cypher.bench_function("exec_temporal_chain", |b| {
        b.iter(|| {
            black_box(
                run(
                    system.graph_mut(),
                    "MATCH (a:Event)-[:BEFORE]->(b:Event) WHERE a.label CONTAINS 'fever' \
                     RETURN a.reportId LIMIT 20",
                )
                .expect("query"),
            )
        })
    });
    cypher.finish();

    let mut engine = c.benchmark_group("graph_engine");
    let parsed =
        system.parse_query("A patient was admitted to the hospital because of fever and cough.");
    let searcher = GraphSearcher::from_graph(system.graph());
    engine.bench_function("concept_and_pattern_search", |b| {
        b.iter(|| black_box(searcher.search(system.graph(), black_box(&parsed), 10)))
    });
    engine.bench_function("searcher_rebuild", |b| {
        b.iter(|| black_box(GraphSearcher::from_graph(system.graph())))
    });
    engine.finish();

    let mut ingest = c.benchmark_group("graph_ingest");
    ingest.sample_size(10);
    ingest.bench_function("node_edge_creation_1k", |b| {
        b.iter(|| {
            let mut g = PropertyGraph::new();
            let mut prev = None;
            for i in 0..1_000u32 {
                let n = g.create_node(
                    ["Event"],
                    vec![("step", create_docstore::Value::Number(i as f64))],
                );
                if let Some(p) = prev {
                    g.create_edge::<&str>(p, n, "BEFORE", vec![]);
                }
                prev = Some(n);
            }
            black_box(g)
        })
    });
    ingest.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
