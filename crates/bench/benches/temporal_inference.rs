//! Criterion: temporal module costs (E3/E5 timing side) — pairwise
//! prediction, global inference repair, and transitive closure.

use create_corpus::temporal_data::i2b2_like;
use create_ontology::RelationType;
use create_temporal::global::global_inference;
use create_temporal::model::{TemporalModel, TrainMode, TrainOptions};
use create_temporal::TemporalGraph;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_temporal(c: &mut Criterion) {
    let dataset = i2b2_like(1, 80);
    let (train, test) = dataset.split(0.8);
    let model = TemporalModel::train(
        &train,
        &dataset.labels,
        &TrainOptions {
            mode: TrainMode::PslRegularized,
            epochs: 6,
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("temporal");
    group.bench_function("predict_doc_with_global_inference", |b| {
        b.iter(|| {
            for doc in &test {
                black_box(model.predict_doc(doc));
            }
        })
    });

    // Isolated global inference on a synthetic distribution set.
    let doc = &test[0];
    let pairs: Vec<(usize, usize)> = doc.pairs.iter().map(|&(i, j, _)| (i, j)).collect();
    let probs: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(i, j)| model.pair_proba(doc, i, j))
        .collect();
    group.bench_function("global_inference_single_doc", |b| {
        b.iter(|| {
            black_box(global_inference(
                black_box(&pairs),
                black_box(&probs),
                model.labels(),
            ))
        })
    });

    // Transitive closure on a 40-event chain graph.
    let mut graph = TemporalGraph::new((0..40).map(|i| format!("e{i}")).collect());
    for i in 0..39 {
        graph.add_edge(i, i + 1, RelationType::Before);
    }
    group.bench_function("closure_40_event_chain", |b| {
        b.iter(|| black_box(graph.closure()))
    });
    group.bench_function("fig5_inference", |b| {
        let g = TemporalGraph::fig5_example();
        b.iter(|| black_box(g.infer(1, 5)))
    });
    group.finish();

    let mut training = c.benchmark_group("temporal_training");
    training.sample_size(10);
    let small = i2b2_like(2, 20);
    let (small_train, _) = small.split(0.9);
    training.bench_function("train_local_20_docs", |b| {
        b.iter(|| {
            black_box(TemporalModel::train(
                &small_train,
                &small.labels,
                &TrainOptions {
                    mode: TrainMode::Local,
                    epochs: 4,
                    ..Default::default()
                },
            ))
        })
    });
    training.bench_function("train_psl_20_docs", |b| {
        b.iter(|| {
            black_box(TemporalModel::train(
                &small_train,
                &small.labels,
                &TrainOptions {
                    mode: TrainMode::PslRegularized,
                    epochs: 4,
                    ..Default::default()
                },
            ))
        })
    });
    training.finish();
}

criterion_group!(benches, bench_temporal);
criterion_main!(benches);
