//! Criterion: document-store costs — JSON parse/serialize and filtered
//! queries (the MongoDB substrate's hot paths).

use create_bench::corpus;
use create_docstore::json::{obj, parse_json};
use create_docstore::{DocStore, Filter};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_docstore(c: &mut Criterion) {
    // JSON round-trip on a realistic report document.
    let reports = corpus(20, 10);
    let doc = obj([
        ("_id", reports[0].id.clone().into()),
        ("title", reports[0].title.clone().into()),
        ("text", reports[0].text.clone().into()),
        ("year", (reports[0].metadata.year as i64).into()),
        (
            "authors",
            reports[0]
                .metadata
                .authors
                .iter()
                .map(|a| a.as_str())
                .collect::<Vec<_>>()
                .into(),
        ),
    ]);
    let serialized = doc.to_json();
    let mut json = c.benchmark_group("json");
    json.throughput(Throughput::Bytes(serialized.len() as u64));
    json.bench_function("serialize_report_doc", |b| {
        b.iter(|| black_box(doc.to_json()))
    });
    json.bench_function("parse_report_doc", |b| {
        b.iter(|| black_box(parse_json(black_box(&serialized)).expect("valid")))
    });
    json.finish();

    // Filtered queries over 2 000 documents.
    let store = DocStore::in_memory();
    let big = corpus(2_000, 11);
    for r in &big {
        store
            .insert(
                "reports",
                obj([
                    ("_id", r.id.clone().into()),
                    ("title", r.title.clone().into()),
                    ("category", r.category.coarse_label().into()),
                    ("year", (r.metadata.year as i64).into()),
                ]),
            )
            .expect("insert");
    }
    let mut queries = c.benchmark_group("docstore_query_2k");
    queries.bench_function("get_by_id", |b| {
        b.iter(|| black_box(store.get("reports", &big[500].id)))
    });
    queries.bench_function("filter_eq_category", |b| {
        let f = Filter::eq("category", "cardiovascular");
        b.iter(|| black_box(store.count("reports", black_box(&f))))
    });
    queries.bench_function("filter_and_range_contains", |b| {
        let f = Filter::And(vec![
            Filter::Gte("year".into(), 2015.0),
            Filter::contains("title", "case"),
        ]);
        b.iter(|| black_box(store.find("reports", black_box(&f)).len()))
    });
    queries.finish();
}

criterion_group!(benches, bench_docstore);
criterion_main!(benches);
