//! Criterion: PDF write/extract and TEI generation (E9 timing side).

use create_bench::corpus;
use create_grobid::{extract_text, process_pdf, write_pdf, PdfSource};
use create_text::split_sentences;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn sample_pdf() -> (PdfSource, Vec<u8>) {
    let reports = corpus(3, 12);
    let r = &reports[0];
    let mut body_lines = vec!["Abstract".to_string()];
    for s in split_sentences(&r.text) {
        body_lines.push(s.slice(&r.text).to_string());
    }
    let src = PdfSource {
        title: r.title.clone(),
        authors: r.metadata.authors.join(", "),
        affiliation: "Department of Medicine, Example University Hospital".to_string(),
        body_lines,
    };
    let bytes = write_pdf(&src);
    (src, bytes)
}

fn bench_grobid(c: &mut Criterion) {
    let (src, bytes) = sample_pdf();
    let mut group = c.benchmark_group("grobid");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("write_pdf", |b| {
        b.iter(|| black_box(write_pdf(black_box(&src))))
    });
    group.bench_function("extract_text", |b| {
        b.iter(|| black_box(extract_text(black_box(&bytes)).expect("valid pdf")))
    });
    group.bench_function("process_pdf_full", |b| {
        b.iter(|| black_box(process_pdf(black_box(&bytes)).expect("valid pdf")))
    });
    let doc = process_pdf(&bytes).expect("valid");
    group.bench_function("to_tei_serialize", |b| {
        b.iter(|| black_box(doc.to_tei().serialize()))
    });
    let tei = doc.to_tei().serialize();
    group.bench_function("parse_tei_xml", |b| {
        b.iter(|| black_box(create_grobid::parse_xml(black_box(&tei)).expect("valid xml")))
    });
    group.finish();
}

criterion_group!(benches, bench_grobid);
criterion_main!(benches);
