//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`) and the
//! criterion benches (`benches/`).
//!
//! Each experiment in DESIGN.md's index (E1–E10) has a binary that prints
//! the paper-shaped table; this module centralizes corpus/system/tagger
//! construction and the aligned-table printer so the binaries stay focused
//! on their experiment logic.

use create_core::{Create, CreateConfig};
use create_corpus::{CaseReport, CorpusConfig, Generator};
use create_docstore::json::obj;
use create_docstore::Value;
use create_ner::{CrfTagger, CrfTaggerConfig, FlairFeatures, NerDataset};
use create_ontology::Ontology;
use std::sync::Arc;

/// The git revision for provenance stamps: the `GIT_REV` env var when
/// set (`scripts/verify.sh` exports it), otherwise `git rev-parse
/// --short HEAD` run directly, otherwise `"unknown"` (e.g. outside a
/// checkout).
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Provenance block for bench JSON reports: host size, pool width, git
/// revision (see [`git_rev`]), and whether the obs instrumentation was
/// compiled in.
pub fn meta_json(n_docs: usize) -> Value {
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    obj([
        ("cpus", (cpus as i64).into()),
        (
            "pool_threads",
            (create_util::ThreadPool::global().threads() as i64).into(),
        ),
        ("git_rev", git_rev().into()),
        ("n_docs", (n_docs as i64).into()),
        ("obs_enabled", create_obs::enabled().into()),
        (
            "shards",
            (CreateConfig::default().shards as i64).into(),
        ),
    ])
}

/// Reads `metric{stage=...}` latency histograms out of the global obs
/// registry: per stage, the observation count and p50/p95/p99 in
/// seconds. Stages with no observations report zeros; with the obs
/// feature compiled out every stage reads zero.
pub fn stage_histograms_json(metric: &str, stages: &[&str]) -> Value {
    let rows: Vec<Value> = stages
        .iter()
        .map(|stage| {
            let h = create_obs::histogram_with(metric, &[("stage", stage)]);
            obj([
                ("stage", (*stage).into()),
                ("count", (h.count() as i64).into()),
                ("p50_seconds", h.quantile(0.50).into()),
                ("p95_seconds", h.quantile(0.95).into()),
                ("p99_seconds", h.quantile(0.99).into()),
            ])
        })
        .collect();
    Value::Array(rows)
}

/// Generates the standard experiment corpus.
pub fn corpus(num_reports: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports,
        seed,
        ..Default::default()
    })
    .generate()
}

/// Builds a platform pre-loaded with `n` gold reports.
pub fn loaded_create(num_reports: usize, seed: u64) -> (Create, Vec<CaseReport>) {
    let reports = corpus(num_reports, seed);
    let system = Create::new(CreateConfig::default());
    for r in &reports {
        system.ingest_gold(r).expect("gold reports always ingest");
    }
    (system, reports)
}

/// Trains a CRF tagger over a dataset, optionally with the C-FLAIR
/// feature block.
pub fn train_tagger(
    dataset: &NerDataset,
    ontology: Option<Arc<Ontology>>,
    flair: Option<Arc<FlairFeatures>>,
    epochs: usize,
) -> CrfTagger {
    CrfTagger::train(
        dataset,
        CrfTaggerConfig {
            feature_bits: 18,
            train: create_ml::CrfTrainConfig {
                epochs,
                ..Default::default()
            },
            gazetteer_features: ontology.is_some(),
        },
        ontology,
        flair,
    )
}

/// An aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1).max(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        println!("{}", self.render());
    }
}

/// Formats an f64 with 4 decimals (the experiment tables' standard).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["system", "f1"]);
        t.row(vec!["baseline".into(), "0.81".into()]);
        t.row(vec!["ours".into(), "0.84".into()]);
        let r = t.render();
        assert!(r.contains("system"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn loaded_create_builds() {
        let (system, reports) = loaded_create(5, 1);
        assert_eq!(system.stats().reports, reports.len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(pct(0.2), "20.0%");
    }

    #[test]
    fn git_rev_is_never_empty() {
        // Whether GIT_REV is exported, git resolves HEAD, or neither,
        // the provenance stamp must carry *something*.
        let rev = git_rev();
        assert!(!rev.is_empty());
        assert_eq!(rev, rev.trim());
    }
}
