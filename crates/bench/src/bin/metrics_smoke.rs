//! Observability smoke check: ingest a small corpus, run a few facade
//! searches, then assert the obs registry saw every layer (pipeline
//! stages, DAAT executor, query cache, graph executor) and print the
//! Prometheus exposition to stdout for `scripts/verify.sh` to grep.
//!
//! ```bash
//! cargo run --release -p create-bench --bin metrics_smoke
//! ```

use create_core::{Create, CreateConfig};
use create_corpus::QuerySet;
use create_obs::names;

fn main() {
    assert!(
        create_obs::enabled(),
        "metrics_smoke must run with the obs feature (default features)"
    );
    let reports = create_bench::corpus(60, 99);
    let system = Create::new(CreateConfig::default());
    system.ingest_gold_batch(&reports, 0).expect("ingest");

    let queries = QuerySet::generate(&reports, 7, 12).queries;
    for q in &queries {
        let _ = system.search(&q.text, 10);
    }
    // Repeat one query so the cache-hit counter moves too.
    if let Some(q) = queries.first() {
        let _ = system.search(&q.text, 10);
    }
    // One cohort query exercising every plan stage: filter pushdown,
    // temporal constraints, keyword ranking, facet counting, merge.
    let criteria = create_docstore::json::parse_json(
        r#"{
            "filters": [{"field": "sex", "values": ["female", "male"]}],
            "keywords": "fatigue and weight loss",
            "temporal": [{"a": "weight loss", "op": "within", "days": 365, "b": "fatigue"}],
            "facets": ["category", "year"],
            "k": 10
        }"#,
    )
    .expect("criteria json");
    let cohort = system.cohort_from_json(&criteria).expect("cohort query");

    let registry = create_obs::Registry::global();
    for (counter, why) in [
        (names::DAAT_POSTINGS_ADVANCED_TOTAL, "keyword searches ran"),
        (names::QUERY_CACHE_MISSES_TOTAL, "cold queries missed the cache"),
        (names::QUERY_CACHE_HITS_TOTAL, "the repeated query hit the cache"),
        (names::GRAPH_EXEC_NODES_VISITED_TOTAL, "graph searches walked nodes"),
        (names::PLAN_NODES_TOTAL, "every query lowers to a plan"),
        (names::BITMAP_INTERSECTIONS_TOTAL, "the cohort filter intersected bitmaps"),
    ] {
        assert!(
            registry.counter(counter).get() > 0,
            "{counter} should be nonzero: {why}"
        );
    }
    for stage in [names::STAGE_GRAPH_BUILD, names::STAGE_INDEX_WRITE] {
        let h = registry.histogram_with(names::PIPELINE_STAGE_SECONDS, &[("stage", stage)]);
        assert!(h.count() > 0, "pipeline stage {stage} should have samples");
    }
    for stage in names::QUERY_STAGES {
        let h = registry.histogram_with(names::QUERY_STAGE_SECONDS, &[("stage", stage)]);
        assert!(h.count() > 0, "query stage {stage} should have samples");
    }
    let total = registry.histogram(names::QUERY_SECONDS);
    assert_eq!(
        total.count(),
        (queries.len() + 1) as u64,
        "every facade search lands in {}",
        names::QUERY_SECONDS
    );

    eprintln!(
        "metrics_smoke: {} searches + 1 cohort query ({} matched) over {} reports, all layers recorded",
        queries.len() + 1,
        cohort.total_matched,
        reports.len()
    );
    print!("{}", create_obs::render_prometheus());
}
