//! End-to-end trace smoke check, run by `scripts/verify.sh`. Boots a
//! real sharded `Server`, sends a batch search over a raw socket, then
//! follows the `X-Trace-Id` response header to `GET /trace/{id}` and
//! asserts the flight recorder returns a span tree that covers the
//! shard fan-out. Also checks that `/metrics` renders at least one
//! histogram-bucket exemplar. Prints the trace JSON to stdout so the
//! caller can grep it; exits nonzero on any failure.
//!
//! ```bash
//! cargo run --release -p create-bench --bin trace_smoke
//! ```

use create_core::{Create, CreateConfig};
use create_server::{build_api, KeepAliveClient, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let reports = create_bench::corpus(30, 11);
    let system = Arc::new(Create::new(CreateConfig {
        shards: 2,
        ..Default::default()
    }));
    system.ingest_gold_batch(&reports, 0).expect("ingest");

    let server = Server::bind_with("127.0.0.1:0", build_api(system), ServerConfig::default())
        .expect("bind trace smoke server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    let mut client = KeepAliveClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // Batch search: dispatch fans queries out to pool workers, each of
    // which fans keyword/graph search out across both shards — so the
    // recorded tree must contain per-shard child spans.
    let resp = client
        .post(
            "/search_batch",
            r#"{"queries": ["fever and productive cough", "chest pain"], "k": 5}"#,
        )
        .expect("POST /search_batch");
    assert_eq!(resp.status, 200, "batch search failed: {}", resp.body_str());
    let trace_id = resp
        .headers
        .get("x-trace-id")
        .expect("X-Trace-Id response header")
        .clone();
    assert!(!trace_id.is_empty(), "empty trace id header");
    eprintln!("trace_smoke: batch search traced as {trace_id}");

    let trace = client
        .get(&format!("/trace/{trace_id}"))
        .expect("GET /trace/{id}");
    assert_eq!(
        trace.status, 200,
        "trace not recorded: {}",
        trace.body_str()
    );
    let body = trace.body_str();
    assert!(
        body.contains("keyword_shard"),
        "span tree missing shard fan-out spans: {body}"
    );
    assert!(
        body.contains("\"parent\""),
        "span tree missing parent linkage: {body}"
    );
    // stdout carries the tree for the caller's greps.
    println!("{body}");
    eprintln!("trace_smoke: /trace/{trace_id} span tree OK");

    let summaries = client.get("/debug/traces").expect("GET /debug/traces");
    assert_eq!(summaries.status, 200);
    assert!(
        summaries.body_str().contains(&trace_id),
        "recorder summary does not list the trace"
    );
    eprintln!("trace_smoke: /debug/traces lists the trace OK");

    let metrics = client.get("/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert!(
        text.contains("# {trace_id=\""),
        "no exemplar rendered on /metrics"
    );
    assert!(
        text.contains("create_pool_jobs_executed_total"),
        "pool series missing from /metrics"
    );
    eprintln!("trace_smoke: /metrics exemplar + pool series OK");

    shutdown.shutdown();
    server_thread.join().expect("server thread");
    eprintln!("trace_smoke: OK");
}
