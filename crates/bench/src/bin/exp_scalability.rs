//! E10 extension — system scalability sweep.
//!
//! The demo paper hosts ~10k curated reports; this sweep measures how the
//! reproduction's ingest throughput, store sizes, and query latency
//! distribution behave as the corpus grows, using the full CREATe-IR path
//! (gold ingest → graph + index + docstore → Neo4j-first search).

use create_bench::{loaded_create, Table};
use create_corpus::QuerySet;
use create_util::{stats::Histogram, Summary};
use std::time::Instant;

fn main() {
    let sizes = [500usize, 1_000, 2_000, 4_000];
    let mut table = Table::new(&[
        "reports",
        "ingest s",
        "reports/s",
        "graph nodes",
        "graph edges",
        "index terms",
        "q mean ms",
        "q p50 ms",
        "q p95 ms",
        "q p99 ms",
    ]);

    for &n in &sizes {
        eprintln!("[{n} reports]…");
        let start = Instant::now();
        let (system, reports) = loaded_create(n, 314159);
        let ingest_s = start.elapsed().as_secs_f64();
        let stats = system.stats();

        let queries = QuerySet::generate(&reports, 2718, 60);
        let mut latencies_ms = Vec::with_capacity(queries.queries.len());
        for q in &queries.queries {
            let t = Instant::now();
            let hits = system.search(&q.text, 10);
            latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(hits);
        }
        let summary = Summary::of(&latencies_ms);
        table.row(vec![
            n.to_string(),
            format!("{ingest_s:.1}"),
            format!("{:.0}", n as f64 / ingest_s),
            stats.graph_nodes.to_string(),
            stats.graph_edges.to_string(),
            stats.index_terms.to_string(),
            format!("{:.2}", summary.mean),
            format!("{:.2}", summary.p50),
            format!("{:.2}", summary.p95),
            format!("{:.2}", summary.p99),
        ]);

        // Latency histogram at the largest size.
        if n == *sizes.last().expect("non-empty") {
            let hi = (summary.p99 * 1.5).max(1.0);
            let mut hist = Histogram::new(0.0, hi, 12);
            for &l in &latencies_ms {
                hist.record(l);
            }
            println!("\nquery latency histogram at {n} reports (ms buckets):");
            println!("{}", hist.render(40));
        }
    }
    table.print("E10 extension — scalability sweep (gold ingest, Neo4j-first search)");
    println!(
        "expected shape: near-linear ingest, sub-linear query latency growth \
         (graph search is seeded from the rarest query concept's posting)"
    );
}
