//! Cohort-retrieval throughput harness (plain Rust, offline).
//!
//! Builds the sharded platform over N synthetic case reports, then times
//! the cohort executor's two physical plans against each other on
//! filter-only, temporal, keyword-pushdown, and facet-aggregation
//! workloads:
//!
//! * **Optimized** — facet-bitmap filter pushdown: the keyword ranker
//!   scores eligible documents only (`search_filtered`), temporal checks
//!   run on the filtered survivors;
//! * **Naive** — rank-then-filter: score the whole shard, intersect with
//!   the eligible set afterwards.
//!
//! Every workload query is first checked for bit-identical results under
//! both plans — the speedup is only meaningful if pushdown changes
//! nothing but the work done. Writes `BENCH_cohort.json` (pushdown
//! speedups, facet-bitmap footprint, plan-stage latency quantiles) so
//! `scripts/verify.sh` can gate on the keyword-pushdown ratio.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_cohort            # 1000 docs
//! cargo run --release -p create-bench --bin bench_cohort -- 300 out.json
//! ```

use create_core::plan::parse_cohort_criteria;
use create_core::{CohortCriteria, Create, CreateConfig, PlanMode};
use create_docstore::json::{obj, parse_json};
use create_docstore::Value;
use std::time::Instant;

const REPS: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(1000);
    let out_path = args.next().unwrap_or_else(|| "BENCH_cohort.json".to_string());

    eprintln!("generating {n} synthetic reports...");
    let reports = create_bench::corpus(n, 4321);
    let system = Create::new(CreateConfig::default());
    system.ingest_gold_batch(&reports, 0).expect("ingest");
    let ontology = create_ontology::clinical_ontology();

    // Selective criteria so pushdown has something to push: each
    // workload's eligible sets are strict subsets of the corpus.
    let workloads: [(&str, Vec<&str>); 4] = [
        (
            "filter",
            vec![
                r#"{"filters":[{"field":"category","values":["cancer"]}],"k":10}"#,
                r#"{"filters":[{"field":"sex","values":["female"]}],"k":10}"#,
                r#"{"filters":[{"field":"category","values":["cardiovascular","respiratory"]},{"field":"sex","values":["male"]}],"k":10}"#,
                r#"{"filters":[{"field":"age_band","values":["60-69","70-79"]},{"field":"entity_type","values":["Medication"]}],"k":10}"#,
            ],
        ),
        (
            "temporal",
            vec![
                r#"{"temporal":[{"a":"weight loss","op":"before","b":"fatigue"}],"k":10}"#,
                r#"{"temporal":[{"a":"fever","op":"overlaps","b":"malaise"}],"k":10}"#,
                r#"{"temporal":[{"a":"chest pain","op":"within","days":90,"b":"palpitations"}],"k":10}"#,
                r#"{"filters":[{"field":"sex","values":["female"]}],"temporal":[{"a":"weight loss","op":"before","b":"fatigue"}],"k":10}"#,
            ],
        ),
        (
            "keyword_pushdown",
            vec![
                r#"{"filters":[{"field":"category","values":["cancer"]}],"keywords":"weight loss and fatigue","k":10}"#,
                r#"{"filters":[{"field":"sex","values":["female"]},{"field":"category","values":["cardiovascular"]}],"keywords":"chest pain","k":10}"#,
                r#"{"filters":[{"field":"category","values":["infectious"]}],"keywords":"fever and malaise","k":10}"#,
                r#"{"filters":[{"field":"age_band","values":["60-69","70-79","80-89"]}],"keywords":"dyspnea","k":10}"#,
            ],
        ),
        (
            "facets",
            vec![
                r#"{"filters":[{"field":"category","values":["cancer"]}],"facets":["sex","age_band","year"],"k":10}"#,
                r#"{"filters":[{"field":"sex","values":["male"]}],"facets":["category","year","entity_type"],"k":10}"#,
                r#"{"keywords":"fatigue","facets":["category","sex","age_band"],"k":10}"#,
            ],
        ),
    ];

    let parse = |criteria: &str| -> CohortCriteria {
        parse_cohort_criteria(&parse_json(criteria).expect("criteria json"), &ontology)
            .expect("criteria accepted")
    };

    // Untimed warm-up doubling as the equivalence gate: pushdown must
    // change the work, never the answer.
    let mut matched_total = 0u64;
    for (name, criteria_set) in &workloads {
        for criteria in criteria_set {
            let parsed = parse(criteria);
            let optimized = system.cohort_with_mode(&parsed, PlanMode::Optimized);
            let naive = system.cohort_with_mode(&parsed, PlanMode::Naive);
            assert_eq!(
                optimized.to_json().to_json(),
                naive.to_json().to_json(),
                "{name}: plans disagree for {criteria}"
            );
            matched_total += optimized.total_matched;
        }
    }
    eprintln!("equivalence verified: Optimized and Naive plans agree on every workload query");
    assert!(matched_total > 0, "workloads matched nothing — selectivity probe is broken");

    let mut rows: Vec<Value> = Vec::new();
    for (name, criteria_set) in &workloads {
        let parsed: Vec<CohortCriteria> = criteria_set.iter().map(|c| parse(c)).collect();
        let optimized_qps = best_qps(&parsed, |c| {
            system.cohort_with_mode(c, PlanMode::Optimized);
        });
        let naive_qps = best_qps(&parsed, |c| {
            system.cohort_with_mode(c, PlanMode::Naive);
        });
        let speedup = optimized_qps / naive_qps;
        eprintln!(
            "{name:>16}: pushdown {optimized_qps:10.1} q/s  naive {naive_qps:10.1} q/s  (speedup {speedup:.2}x)"
        );
        rows.push(obj([
            ("workload", (*name).into()),
            ("queries", (criteria_set.len() as i64).into()),
            ("optimized_qps", optimized_qps.into()),
            ("naive_qps", naive_qps.into()),
            ("speedup", speedup.into()),
        ]));
    }

    let facets = system.facet_stats();
    let bytes_per_doc = if facets.docs > 0 {
        facets.postings_bytes as f64 / facets.docs as f64
    } else {
        0.0
    };
    eprintln!(
        "facet bitmaps: {} values over {} docs, {} bytes ({bytes_per_doc:.1} bytes/doc)",
        facets.values, facets.docs, facets.postings_bytes
    );

    let report = obj([
        ("bench", "cohort".into()),
        ("meta", create_bench::meta_json(n)),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 4321_i64.into()),
        ("plans_bit_identical", true.into()),
        ("total_matched_across_workloads", (matched_total as i64).into()),
        ("runs", Value::Array(rows)),
        (
            "facet_bitmaps",
            obj([
                ("values", (facets.values as i64).into()),
                ("docs", (facets.docs as i64).into()),
                ("postings_bytes", (facets.postings_bytes as i64).into()),
                ("bytes_per_doc", bytes_per_doc.into()),
            ]),
        ),
        // Plan-stage latency distributions accumulated across the run.
        (
            "plan_stages",
            create_bench::stage_histograms_json(
                create_obs::names::QUERY_STAGE_SECONDS,
                &create_obs::names::QUERY_STAGES,
            ),
        ),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");
}

/// Best-of-R queries/sec for one plan mode over a workload.
fn best_qps(criteria: &[CohortCriteria], mut run: impl FnMut(&CohortCriteria)) -> f64 {
    let mut best_secs = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        for c in criteria {
            run(c);
        }
        best_secs = best_secs.min(started.elapsed().as_secs_f64());
    }
    criteria.len() as f64 / best_secs
}
