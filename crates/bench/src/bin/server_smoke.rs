//! Raw-socket smoke check for the evented HTTP server, run by
//! `scripts/verify.sh` (no curl dependency). Binds a real `Server` on an
//! ephemeral port and exercises the connection-layer contract directly:
//! keep-alive reuse, pipelined ordering, `Connection: close`, malformed
//! requests, and the request-body ceiling. Exits nonzero on any failure.
//!
//! ```bash
//! cargo run --release -p create-bench --bin server_smoke
//! ```

use create_core::{Create, CreateConfig};
use create_server::{build_api, KeepAliveClient, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let reports = create_bench::corpus(20, 7);
    let system = Arc::new(Create::new(CreateConfig::default()));
    system.ingest_gold_batch(&reports, 0).expect("ingest");

    let server = Server::bind_with("127.0.0.1:0", build_api(system), ServerConfig::default())
        .expect("bind smoke server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    // Keep-alive reuse: many requests over one socket, plus pipelined
    // ordering — /health and /stats bodies differ, so out-of-order
    // responses would be caught by the body checks.
    let mut client = KeepAliveClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let responses = client
        .pipeline_get(&["/health", "/stats", "/health"])
        .expect("pipelined GETs");
    assert_eq!(responses.len(), 3);
    for resp in &responses {
        assert_eq!(resp.status, 200, "pipelined request failed");
        assert!(resp.keep_alive(), "server dropped keep-alive mid-pipeline");
    }
    assert!(
        responses[0].body_str().contains("ok"),
        "first pipelined response is not /health"
    );
    assert!(
        responses[1].body_str().contains("reports"),
        "second pipelined response is not /stats — ordering broken"
    );
    let again = client.get("/health").expect("socket reuse after pipeline");
    assert_eq!(again.status, 200);
    eprintln!("smoke: keep-alive reuse + pipelined ordering OK");

    // Connection: close is honored — the response says close and the
    // server actually closes the socket.
    let mut closer = KeepAliveClient::connect(addr).expect("connect");
    closer
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    closer
        .send_raw(b"GET /health HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send close request");
    let resp = closer.read_response().expect("close response");
    assert_eq!(resp.status, 200);
    assert!(!resp.keep_alive(), "Connection: close not echoed");
    assert!(
        closer.read_response().is_err(),
        "socket still open after Connection: close"
    );
    eprintln!("smoke: Connection: close honored OK");

    // Malformed request line → 400 and the connection is dropped.
    let mut bad = KeepAliveClient::connect(addr).expect("connect");
    bad.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    bad.send_raw(b"NOT-HTTP\r\n\r\n").expect("send garbage");
    let resp = bad.read_response().expect("parse-error response");
    assert_eq!(resp.status, 400, "malformed request not rejected with 400");
    eprintln!("smoke: malformed request -> 400 OK");

    // Declared body above the 8 MiB ceiling → 413 without reading it.
    let mut big = KeepAliveClient::connect(addr).expect("connect");
    big.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    big.send_raw(
        b"POST /submit HTTP/1.1\r\nHost: localhost\r\n\
          Content-Type: application/json\r\nContent-Length: 16777216\r\n\r\n",
    )
    .expect("send oversized header");
    let resp = big.read_response().expect("payload-too-large response");
    assert_eq!(resp.status, 413, "oversized body not rejected with 413");
    eprintln!("smoke: oversized body -> 413 OK");

    shutdown.shutdown();
    server_thread.join().expect("server thread");
    eprintln!("server_smoke: OK");
}
