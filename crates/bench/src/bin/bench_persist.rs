//! Durable-storage benchmark: cold-open vs rebuild, on-disk footprint,
//! and disk-vs-RAM search parity.
//!
//! Builds a flushed data directory of N synthetic reports, then times
//! three paths:
//!
//! * **cold open** — `Create::open` over sealed segments + manifest
//!   (the recovery path: decode + merge, no NLP pipeline);
//! * **legacy rebuild** — the same JSONL store with the `storage/`
//!   directory deleted, forcing the full re-ingest pipeline;
//! * **search** — a query panel over the reopened (disk-born) system
//!   vs a never-persisted in-memory twin, asserting bit-identical
//!   rankings while measuring qps on both.
//!
//! The headline gate (enforced by scripts/verify.sh): cold open must
//! be ≥5x faster than the legacy rebuild at 10k docs.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_persist              # 10000 docs
//! cargo run --release -p create-bench --bin bench_persist -- 2000 out.json
//! ```

use create_core::{Create, CreateConfig, MergePolicy};
use create_corpus::QuerySet;
use create_docstore::json::obj;
use std::path::{Path, PathBuf};
use std::time::Instant;

const K: usize = 10;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("create-bench-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_flushed(dir: &Path, reports: &[create_corpus::CaseReport]) -> f64 {
    let started = Instant::now();
    let system = Create::open(dir, CreateConfig::default()).expect("open empty dir");
    system.ingest_gold_batch(reports, 0).expect("batch ingest");
    system.flush().expect("flush");
    started.elapsed().as_secs_f64()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(10_000);
    let out_path = args.next().unwrap_or_else(|| "BENCH_persist.json".to_string());

    eprintln!("generating {n} synthetic reports...");
    let reports = create_bench::corpus(n, 4321);
    let queries: Vec<String> = QuerySet::generate(&reports, 31, 20)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();

    // Build and flush the durable corpus once; everything below reopens it.
    let dir = fresh_dir("main");
    let build_secs = build_flushed(&dir, &reports);
    eprintln!("build+flush: {build_secs:.2}s ({:.0} docs/sec)", n as f64 / build_secs);

    // Cold open: manifest → segments → merge. Best-of-3 to shed noise.
    let mut cold_open_secs = f64::INFINITY;
    let mut segments = 0usize;
    let mut segment_bytes = 0u64;
    for _ in 0..3 {
        let started = Instant::now();
        let system = Create::open(&dir, CreateConfig::default()).expect("cold open");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(system.stats().reports, n, "cold open recovers every doc");
        let stats = system.storage_stats().expect("disk-backed");
        segments = stats.segments;
        segment_bytes = stats.segment_bytes;
        cold_open_secs = cold_open_secs.min(secs);
    }
    eprintln!(
        "cold open: {cold_open_secs:.3}s  ({segments} segment(s), {segment_bytes} bytes on disk)"
    );

    // Legacy rebuild: same JSONL store, storage/ deleted → the open
    // path has no manifest and must re-run the whole ingest pipeline.
    let legacy_dir = fresh_dir("legacy");
    build_flushed(&legacy_dir, &reports);
    std::fs::remove_dir_all(legacy_dir.join("storage")).expect("drop storage dir");
    let started = Instant::now();
    let rebuilt = Create::open(&legacy_dir, CreateConfig::default()).expect("legacy rebuild");
    let legacy_rebuild_secs = started.elapsed().as_secs_f64();
    assert_eq!(rebuilt.stats().reports, n, "legacy rebuild recovers every doc");
    drop(rebuilt);
    let speedup = legacy_rebuild_secs / cold_open_secs;
    eprintln!("legacy rebuild: {legacy_rebuild_secs:.2}s  (cold open is {speedup:.1}x faster)");

    // Disk-vs-RAM search parity: rankings must be bit-identical, and
    // qps is reported for both so the disk path can't silently regress.
    let disk = Create::open(&dir, CreateConfig::default()).expect("reopen for search");
    let ram = Create::new(CreateConfig::default());
    ram.ingest_gold_batch(&reports, 0).expect("RAM ingest");
    let qps = |system: &Create| {
        // Warm pass (fills caches identically on both), then timed.
        for q in &queries {
            let _ = system.search_with_policy(q, K, MergePolicy::Neo4jFirst);
        }
        let started = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            for q in &queries {
                let _ = system.search_with_policy(q, K, MergePolicy::Neo4jFirst);
            }
        }
        (reps * queries.len()) as f64 / started.elapsed().as_secs_f64()
    };
    for q in &queries {
        let disk_hits: Vec<(String, u64)> = disk
            .search_with_policy(q, K, MergePolicy::Neo4jFirst)
            .into_iter()
            .map(|h| (h.report_id, h.score.to_bits()))
            .collect();
        let ram_hits: Vec<(String, u64)> = ram
            .search_with_policy(q, K, MergePolicy::Neo4jFirst)
            .into_iter()
            .map(|h| (h.report_id, h.score.to_bits()))
            .collect();
        assert_eq!(disk_hits, ram_hits, "disk-born ranking diverged for {q:?}");
    }
    let disk_qps = qps(&disk);
    let ram_qps = qps(&ram);
    eprintln!("search: disk-born {disk_qps:.0} qps vs RAM-born {ram_qps:.0} qps (bit-identical)");

    let ram_postings_bytes = ram.index().postings_bytes();
    let report = obj([
        ("bench", "durable_storage".into()),
        ("meta", create_bench::meta_json(n)),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 4321_i64.into()),
        ("build_flush_secs", build_secs.into()),
        ("cold_open_secs", cold_open_secs.into()),
        ("legacy_rebuild_secs", legacy_rebuild_secs.into()),
        ("cold_open_speedup_vs_rebuild", speedup.into()),
        ("segments", (segments as i64).into()),
        ("segment_bytes", (segment_bytes as i64).into()),
        (
            "segment_bytes_per_doc",
            (segment_bytes as f64 / n as f64).into(),
        ),
        (
            "ram_postings_bytes_per_doc",
            (ram_postings_bytes as f64 / n as f64).into(),
        ),
        ("disk_search_qps", disk_qps.into()),
        ("ram_search_qps", ram_qps.into()),
        ("rankings_bit_identical", true.into()),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&legacy_dir);
}
