//! Experiment E2 — NER F1 across three datasets (Section III-C claim:
//! C-FLAIR-powered NER "outperforms the state-of-the-art methods by 1.5%
//! on average F1").
//!
//! Ladder of systems on each dataset (span-level strict micro F1,
//! averaged over three corpus seeds):
//!   gazetteer < HMM < CRF (the "state of the art" stand-in)
//!   vs CRF + C-FLAIR features (the paper's system).
//!
//! Training uses a deliberately small labeled set (13% of each corpus) so
//! the test set contains surface forms never seen in training — the regime
//! where contextual character embeddings have something to add. Both CRF
//! variants run *without* dictionary (gazetteer) features: our gazetteer
//! is built from the same lexicon that generates the corpus, which would
//! leak labels and mask the embedding effect.
//!
//! The reproduced claim is the *direction and consistency* of the
//! CRF→CRF+C-FLAIR delta; magnitudes are discussed in EXPERIMENTS.md.

use create_bench::{f4, train_tagger, Table};
use create_corpus::{CorpusConfig, Generator};
use create_ner::eval::{span_f1, span_f1_with};
use create_ner::{FlairFeatures, GazetteerTagger, HmmTagger, LabelSet, NerDataset};
use create_ontology::clinical_ontology;
use std::sync::Arc;

struct DatasetSpec {
    name: &'static str,
    typo_rate: f64,
    cardio_only: bool,
}

const SEEDS: [u64; 3] = [11, 22, 33];
const TRAIN_FRACTION: f64 = 0.13;
const EPOCHS: usize = 6;

fn main() {
    let ontology = Arc::new(clinical_ontology());
    let specs = [
        DatasetSpec {
            name: "cardio-reports",
            typo_rate: 0.0,
            cardio_only: true,
        },
        DatasetSpec {
            name: "general-med",
            typo_rate: 0.08,
            cardio_only: false,
        },
        DatasetSpec {
            name: "noisy-submissions",
            typo_rate: 0.18,
            cardio_only: false,
        },
    ];

    let mut table = Table::new(&[
        "dataset",
        "gazetteer",
        "HMM",
        "CRF (SOTA stand-in)",
        "CRF + C-FLAIR",
        "delta",
    ]);
    let mut deltas = Vec::new();

    for spec in &specs {
        eprintln!("[{}] {} seeds…", spec.name, SEEDS.len());
        let mut sums = [0.0f64; 4]; // gaz, hmm, crf, flair
        for &seed in &SEEDS {
            let cvd: Vec<create_ontology::CaseCategory> = create_ontology::CvdArea::all()
                .iter()
                .map(|a| create_ontology::CaseCategory::Cardiovascular(*a))
                .collect();
            let reports = Generator::new(CorpusConfig {
                num_reports: 250,
                seed,
                typo_rate: spec.typo_rate,
                category_filter: spec.cardio_only.then_some(cvd),
                ..Default::default()
            })
            .generate();
            let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
            let (train, test) = dataset.split(TRAIN_FRACTION);

            let gaz = GazetteerTagger::new(&ontology, LabelSet::ner_targets());
            sums[0] += span_f1_with(|s| gaz.tag(s), &test).0.f1;

            let hmm = HmmTagger::train(&train);
            sums[1] += span_f1_with(|s| hmm.tag(s), &test).0.f1;

            let crf = train_tagger(&train, None, None, EPOCHS);
            sums[2] += span_f1(&crf, &test).0.f1;

            // C-FLAIR pre-trained on the *training* raw text only.
            let flair = Arc::new(FlairFeatures::pretrain(&train.raw_text(), 7));
            let crf_flair = train_tagger(&train, None, Some(flair), EPOCHS);
            sums[3] += span_f1(&crf_flair, &test).0.f1;
        }
        let n = SEEDS.len() as f64;
        let (gaz, hmm, crf, flair) = (sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n);
        let delta = flair - crf;
        deltas.push(delta);
        table.row(vec![
            spec.name.to_string(),
            f4(gaz),
            f4(hmm),
            f4(crf),
            f4(flair),
            format!("{:+.2}", delta * 100.0),
        ]);
    }

    table.print("E2 — NER span F1 (strict), mean of 3 seeds per dataset");
    let avg_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!(
        "paper shape: C-FLAIR beats the best baseline by ~1.5 F1 on average → measured {:+.2} F1 (per-dataset: {})",
        avg_delta * 100.0,
        deltas
            .iter()
            .map(|d| format!("{:+.2}", d * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "note: at laptop scale with a templated synthetic corpus, handcrafted affix+context \
         features already capture most of what the embeddings add; see EXPERIMENTS.md."
    );
}
