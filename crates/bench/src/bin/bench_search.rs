//! Query-path throughput harness (plain Rust, no external bench
//! framework — the workspace builds offline).
//!
//! Builds the production index over N synthetic case reports, then times
//! the DAAT executor (`Index::search` — galloping intersection, MaxScore
//! pruning, bucketed fuzzy expansion) against the exhaustive baseline
//! (`Index::search_exhaustive`) on term, phrase, boolean, and fuzzy
//! workloads, asserting bit-identical rankings throughout. A final
//! workload measures the facade's generation-stamped query cache (cold
//! pass vs. repeated pass). Writes `BENCH_search.json` so the perf
//! trajectory is tracked from PR to PR.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_search            # 1000 docs
//! cargo run --release -p create-bench --bin bench_search -- 200 out.json
//! ```

use create_core::{Create, CreateConfig};
use create_corpus::QuerySet;
use create_docstore::json::obj;
use create_docstore::Value;
use create_index::{score::Scorer, Index, QueryNode};
use create_text::Analyzer;
use create_util::Rng;
use std::time::Instant;

const K: usize = 10;
const REPS: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(1000);
    let out_path = args.next().unwrap_or_else(|| "BENCH_search.json".to_string());

    eprintln!("generating {n} synthetic reports...");
    let reports = create_bench::corpus(n, 1234);
    let mut index = Index::clinical();
    for r in &reports {
        index
            .add_document(
                &r.id,
                &[
                    ("title", r.title.as_str()),
                    ("body", r.text.as_str()),
                    ("body_ngram", r.text.as_str()),
                ],
            )
            .expect("index build");
    }

    // Seeded workloads drawn from the indexed text so queries hit real
    // postings (the interesting case for both executors).
    let analyzer = Analyzer::clinical_standard();
    let analyzed: Vec<Vec<String>> = reports.iter().map(|r| analyzer.terms(&r.text)).collect();
    let mut rng = Rng::seed_from_u64(20_240_806);
    let term_queries: Vec<QueryNode> = (0..60)
        .map(|_| QueryNode::Term {
            field: "body".to_string(),
            term: pick_term(&mut rng, &analyzed),
        })
        .collect();
    let phrase_queries: Vec<QueryNode> = (0..30)
        .map(|_| {
            let len = 2 + rng.below(2);
            QueryNode::Phrase {
                field: "body".to_string(),
                terms: pick_window(&mut rng, &analyzed, len),
            }
        })
        .collect();
    let bool_queries: Vec<QueryNode> = (0..30)
        .map(|_| {
            // must-pair drawn from one document so the intersection is
            // non-trivially non-empty.
            let doc = loop {
                let d = &analyzed[rng.below(analyzed.len())];
                if d.len() >= 8 {
                    break d;
                }
            };
            QueryNode::Bool {
                must: vec![
                    QueryNode::Term {
                        field: "body".to_string(),
                        term: doc[rng.below(doc.len())].clone(),
                    },
                    QueryNode::Term {
                        field: "body".to_string(),
                        term: doc[rng.below(doc.len())].clone(),
                    },
                ],
                should: vec![QueryNode::Term {
                    field: "body".to_string(),
                    term: pick_term(&mut rng, &analyzed),
                }],
                must_not: Vec::new(),
            }
        })
        .collect();
    let fuzzy_queries: Vec<QueryNode> = (0..20)
        .map(|_| {
            let base = pick_term(&mut rng, &analyzed);
            QueryNode::Fuzzy {
                field: "body".to_string(),
                term: typo(&mut rng, &base),
                max_edits: 1 + rng.below(2),
            }
        })
        .collect();

    let workloads: [(&str, &[QueryNode]); 4] = [
        ("term", &term_queries),
        ("phrase", &phrase_queries),
        ("bool", &bool_queries),
        ("fuzzy", &fuzzy_queries),
    ];

    // Untimed warm-up doubling as the equivalence gate: every workload
    // query must rank bit-identically under both executors.
    for (name, queries) in &workloads {
        for q in *queries {
            let daat = index.search(q, K, Scorer::default());
            let exhaustive = index.search_exhaustive(q, K, Scorer::default());
            assert_eq!(daat.len(), exhaustive.len(), "{name} hit count");
            for (a, b) in daat.iter().zip(&exhaustive) {
                assert_eq!(a.doc, b.doc, "{name} ranking");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "{name} score bits");
            }
        }
    }
    eprintln!("equivalence verified: DAAT rankings are bit-identical to exhaustive");

    let mut rows: Vec<Value> = Vec::new();
    for (name, queries) in &workloads {
        let daat_qps = best_qps(queries, |q| {
            index.search(q, K, Scorer::default());
        });
        let exhaustive_qps = best_qps(queries, |q| {
            index.search_exhaustive(q, K, Scorer::default());
        });
        let speedup = daat_qps / exhaustive_qps;
        eprintln!(
            "{name:>6}: daat {daat_qps:10.1} q/s  exhaustive {exhaustive_qps:10.1} q/s  (speedup {speedup:.2}x)"
        );
        rows.push(obj([
            ("workload", (*name).into()),
            ("queries", (queries.len() as i64).into()),
            ("daat_qps", daat_qps.into()),
            ("exhaustive_qps", exhaustive_qps.into()),
            ("speedup", speedup.into()),
        ]));
    }

    // Query-cache workload: full-facade searches (IE parse + graph +
    // keyword + merge). The cold pass computes and fills the cache; warm
    // passes repeat the same queries and are served from it.
    eprintln!("building Create facade for the cache workload...");
    let system = Create::new(CreateConfig::default());
    system
        .ingest_gold_batch(&reports, 0)
        .expect("facade ingest");
    let query_texts: Vec<String> = QuerySet::generate(&reports, 4321, 25)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();
    let started = Instant::now();
    let cold: Vec<Vec<create_core::SearchHit>> =
        query_texts.iter().map(|q| system.search(q, K)).collect();
    let cold_secs = started.elapsed().as_secs_f64();
    let mut warm_best = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        for (q, expected) in query_texts.iter().zip(&cold) {
            let hits = system.search(q, K);
            assert_eq!(hits.len(), expected.len(), "cached hits match");
        }
        warm_best = warm_best.min(started.elapsed().as_secs_f64());
    }
    let cache = system.cache_stats();
    assert!(cache.hits >= (REPS * query_texts.len()) as u64);
    let cold_qps = query_texts.len() as f64 / cold_secs;
    let warm_qps = query_texts.len() as f64 / warm_best;
    let cache_speedup = warm_qps / cold_qps;
    eprintln!(
        "cached: cold {cold_qps:10.1} q/s  warm {warm_qps:10.1} q/s  (speedup {cache_speedup:.2}x)"
    );
    rows.push(obj([
        ("workload", "cached".into()),
        ("queries", (query_texts.len() as i64).into()),
        ("cold_qps", cold_qps.into()),
        ("warm_qps", warm_qps.into()),
        ("speedup", cache_speedup.into()),
        ("cache_hits", (cache.hits as i64).into()),
        ("cache_misses", (cache.misses as i64).into()),
    ]));

    let report = obj([
        ("bench", "search".into()),
        ("meta", create_bench::meta_json(n)),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 1234_i64.into()),
        ("k", (K as i64).into()),
        ("bit_identical_to_exhaustive", true.into()),
        ("runs", Value::Array(rows)),
        // Query-stage latency distributions from the obs registry,
        // accumulated across the facade (cached) workload above.
        (
            "query_stages",
            create_bench::stage_histograms_json(
                create_obs::names::QUERY_STAGE_SECONDS,
                &create_obs::names::QUERY_STAGES,
            ),
        ),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");
}

/// Best-of-R queries/sec for one executor over a workload.
fn best_qps(queries: &[QueryNode], mut run: impl FnMut(&QueryNode)) -> f64 {
    let mut best_secs = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        for q in queries {
            run(q);
        }
        best_secs = best_secs.min(started.elapsed().as_secs_f64());
    }
    queries.len() as f64 / best_secs
}

fn pick_term(rng: &mut Rng, analyzed: &[Vec<String>]) -> String {
    loop {
        let doc = &analyzed[rng.below(analyzed.len())];
        if doc.is_empty() {
            continue;
        }
        return doc[rng.below(doc.len())].clone();
    }
}

fn pick_window(rng: &mut Rng, analyzed: &[Vec<String>], len: usize) -> Vec<String> {
    loop {
        let doc = &analyzed[rng.below(analyzed.len())];
        if doc.len() < len {
            continue;
        }
        let start = rng.below(doc.len() - len + 1);
        return doc[start..start + len].to_vec();
    }
}

fn typo(rng: &mut Rng, term: &str) -> String {
    let mut chars: Vec<char> = term.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.below(chars.len());
    match rng.below(3) {
        0 => chars[pos] = (b'a' + rng.below(26) as u8) as char,
        1 => {
            chars.remove(pos);
        }
        _ => chars.insert(pos, (b'a' + rng.below(26) as u8) as char),
    }
    chars.into_iter().collect()
}
