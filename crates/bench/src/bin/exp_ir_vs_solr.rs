//! Experiment E4 — CREATe-IR vs the Solr baseline (the paper's headline
//! retrieval claim: "CREATe-IR, a relation-based information retrieval
//! system …, which outperforms solr").
//!
//! 2 000 gold-annotated reports are indexed; 120 judged queries across the
//! four families (keyword / entity / relation / temporal) are evaluated
//! with P@10, MRR, and nDCG@10, overall and per family. The BM25 vs TF-IDF
//! ranking ablation is appended.

use create_bench::{corpus, f4, loaded_create, train_tagger, Table};
use create_core::eval::{ndcg_at_k, precision_at_k, reciprocal_rank, IrMetrics};
use create_core::MergePolicy;
use create_corpus::{QueryFamily, QuerySet};
use create_index::{QueryNode, Scorer};
use std::time::Instant;

fn main() {
    let n_reports = 2_000;
    let n_queries = 120;
    eprintln!("building system with {n_reports} reports…");
    let start = Instant::now();
    let (system, reports) = loaded_create(n_reports, 271828);
    eprintln!(
        "ingest took {:.1}s ({:.1} reports/s)",
        start.elapsed().as_secs_f64(),
        n_reports as f64 / start.elapsed().as_secs_f64()
    );
    let queries = QuerySet::generate(&reports, 99, n_queries);
    eprintln!("generated {} judged queries", queries.queries.len());

    // A second platform ingests the SAME narratives through *automatic*
    // extraction (trained NER tagger, heuristic timeline) instead of gold
    // annotations — the realistic operating point; the gold system is the
    // upper bound where graph semantics and judgments coincide.
    eprintln!("building auto-extracted variant (training tagger)…");
    let auto_system = create_core::Create::new(Default::default());
    let tagger_reports = corpus(120, 424242); // disjoint seed for training
    let tagger_dataset =
        create_ner::NerDataset::from_reports(&tagger_reports, create_ner::LabelSet::ner_targets());
    let tagger = train_tagger(&tagger_dataset, Some(auto_system.ontology()), None, 6);
    auto_system.attach_tagger(tagger);
    let auto_start = Instant::now();
    for r in &reports {
        auto_system
            .ingest_text(&r.id, &r.title, &r.text, r.metadata.year)
            .expect("auto ingest");
    }
    eprintln!(
        "auto ingest took {:.1}s ({:.1} reports/s)",
        auto_start.elapsed().as_secs_f64(),
        reports.len() as f64 / auto_start.elapsed().as_secs_f64()
    );

    let systems: [(&str, &create_core::Create, MergePolicy); 4] = [
        (
            "CREATe-IR gold (upper bound)",
            &system,
            MergePolicy::Neo4jFirst,
        ),
        (
            "CREATe-IR auto-extracted",
            &auto_system,
            MergePolicy::Neo4jFirst,
        ),
        (
            "CREATe-IR auto, graph only",
            &auto_system,
            MergePolicy::GraphOnly,
        ),
        ("Solr baseline (keyword)", &system, MergePolicy::EsOnly),
    ];

    // Overall metrics.
    let mut overall = Table::new(&["system", "P@10", "MRR", "nDCG@10", "mean ms/query"]);
    for (name, sys, policy) in systems {
        let mut per_query = Vec::new();
        let mut total_ms = 0.0;
        for q in &queries.queries {
            let t = Instant::now();
            let ids: Vec<String> = sys
                .search_with_policy(&q.text, 10, policy)
                .into_iter()
                .map(|h| h.report_id)
                .collect();
            total_ms += t.elapsed().as_secs_f64() * 1e3;
            per_query.push((
                precision_at_k(&ids, &q.judgments, 10),
                reciprocal_rank(&ids, &q.judgments),
                ndcg_at_k(&ids, &q.judgments, 10),
            ));
        }
        let m = IrMetrics::aggregate(&per_query);
        overall.row(vec![
            name.to_string(),
            f4(m.p_at_10),
            f4(m.mrr),
            f4(m.ndcg_at_10),
            format!("{:.2}", total_ms / queries.queries.len() as f64),
        ]);
    }
    overall.print("E4 — retrieval quality over all queries");

    // Per-family breakdown: auto-extracted CREATe-IR vs Solr.
    let mut per_family = Table::new(&[
        "query family",
        "queries",
        "CREATe-IR (auto) nDCG@10",
        "Solr nDCG@10",
        "delta",
    ]);
    for family in [
        QueryFamily::Keyword,
        QueryFamily::Entity,
        QueryFamily::Relation,
        QueryFamily::Temporal,
    ] {
        let fam_queries = queries.of_family(family);
        let eval = |sys: &create_core::Create, policy: MergePolicy| -> f64 {
            let scores: Vec<f64> = fam_queries
                .iter()
                .map(|q| {
                    let ids: Vec<String> = sys
                        .search_with_policy(&q.text, 10, policy)
                        .into_iter()
                        .map(|h| h.report_id)
                        .collect();
                    ndcg_at_k(&ids, &q.judgments, 10)
                })
                .collect();
            scores.iter().sum::<f64>() / scores.len().max(1) as f64
        };
        let ours = eval(&auto_system, MergePolicy::Neo4jFirst);
        let solr = eval(&system, MergePolicy::EsOnly);
        per_family.row(vec![
            family.label().to_string(),
            fam_queries.len().to_string(),
            f4(ours),
            f4(solr),
            format!("{:+.4}", ours - solr),
        ]);
    }
    per_family.print("E4 — per-family nDCG@10 (relation/temporal drive the gap)");

    // Ranking-function ablation on the raw index (keyword path only).
    let mut ranking = Table::new(&["scorer", "mean nDCG@10 (keyword queries)"]);
    for (name, scorer) in [
        ("BM25 (k1=1.2, b=0.75)", Scorer::Bm25 { k1: 1.2, b: 0.75 }),
        ("BM25 (k1=0.5, b=0.75)", Scorer::Bm25 { k1: 0.5, b: 0.75 }),
        ("BM25 (k1=1.2, b=0.0)", Scorer::Bm25 { k1: 1.2, b: 0.0 }),
        ("TF-IDF", Scorer::TfIdf),
    ] {
        let kw = queries.of_family(QueryFamily::Keyword);
        let scores: Vec<f64> = kw
            .iter()
            .map(|q| {
                let node = QueryNode::Bool {
                    must: vec![],
                    should: vec![
                        QueryNode::query_string(&system.index(), "title", &q.text),
                        QueryNode::query_string(&system.index(), "body", &q.text),
                    ],
                    must_not: vec![],
                };
                let ids: Vec<String> = system
                    .index()
                    .search(&node, 10, scorer)
                    .into_iter()
                    .map(|h| h.external_id)
                    .collect();
                ndcg_at_k(&ids, &q.judgments, 10)
            })
            .collect();
        ranking.row(vec![
            name.to_string(),
            f4(scores.iter().sum::<f64>() / scores.len().max(1) as f64),
        ]);
    }
    ranking.print("E4 ablation — ranking function (keyword family)");
}
