//! Batch-ingestion throughput harness (plain Rust, no external bench
//! framework — the workspace builds offline).
//!
//! Ingests N synthetic case reports through the full pipeline (BRAT
//! export, graph projection, tokenization, segment build + merge) at
//! several thread counts, verifies every run produces identical system
//! state, and writes `BENCH_ingest.json` so the perf trajectory is
//! tracked from PR to PR.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_ingest            # 1000 docs
//! cargo run --release -p create-bench --bin bench_ingest -- 200 out.json
//! ```

use create_core::{Create, CreateConfig, TextSubmission};
use create_docstore::json::obj;
use create_docstore::Value;
use create_ner::{LabelSet, NerDataset};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(1000);
    let out_path = args.next().unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!("generating {n} synthetic reports ({cpus} cpu(s) available)...");
    let reports = create_bench::corpus(n, 1234);

    // Per-document baseline: the pre-batch `ingest_gold` path.
    let started = Instant::now();
    let sequential = Create::new(CreateConfig::default());
    for r in &reports {
        sequential.ingest_gold(r).expect("sequential ingest");
    }
    let seq_secs = started.elapsed().as_secs_f64();
    let seq_rate = n as f64 / seq_secs;
    let reference_stats = sequential.stats();
    let reference_bytes = sequential.index().postings_bytes();
    eprintln!("sequential ingest_gold: {seq_rate:.1} docs/sec");

    // Batch path at increasing thread counts; `max` is the machine size
    // but at least 4 so the scaling row exists on small machines too.
    let mut thread_counts = vec![1, 2, 4, cpus.max(4)];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    // One untimed warm-up batch so page-fault/allocator/frequency
    // transients don't bias whichever configuration runs first, then
    // best-of-R per configuration to shed scheduler noise.
    let reps: usize = 3;
    {
        let warmup = Create::new(CreateConfig::default());
        warmup
            .ingest_gold_batch(&reports, *thread_counts.last().expect("nonempty"))
            .expect("warm-up ingest");
    }

    let mut rates: Vec<(usize, f64)> = Vec::new();
    for &threads in &thread_counts {
        let mut best_secs = f64::INFINITY;
        for _ in 0..reps {
            let started = Instant::now();
            let system = Create::new(CreateConfig::default());
            let count = system
                .ingest_gold_batch(&reports, threads)
                .expect("batch ingest");
            let secs = started.elapsed().as_secs_f64();
            assert_eq!(count, n);
            // Hard determinism check: every run must be byte-identical.
            assert_eq!(
                system.stats(),
                reference_stats,
                "stats diverged at {threads} threads"
            );
            assert_eq!(
                system.index().postings_bytes(),
                reference_bytes,
                "postings diverged at {threads} threads"
            );
            best_secs = best_secs.min(secs);
        }
        rates.push((threads, n as f64 / best_secs));
    }

    // A raw-text batch through the full extraction pipeline (section
    // split, CRF NER, temporal RE), so every pipeline-stage histogram
    // below carries real observations — gold ingest bypasses the text
    // stages because its annotations are already curated.
    let text_n = (n / 10).clamp(10, 200).min(n);
    eprintln!("text-ingest phase: training tagger, extracting {text_n} submissions...");
    let text_rate = {
        let system = Create::new(CreateConfig::default());
        let dataset = NerDataset::from_reports(&reports[..n.min(50)], LabelSet::ner_targets());
        let tagger = create_bench::train_tagger(&dataset, Some(system.ontology()), None, 2);
        system.attach_tagger(tagger);
        let submissions: Vec<TextSubmission> = reports[..text_n]
            .iter()
            .map(|r| TextSubmission {
                id: format!("text:{}", r.id),
                title: r.title.clone(),
                text: r.text.clone(),
                year: r.metadata.year,
            })
            .collect();
        let started = Instant::now();
        let count = system
            .ingest_text_batch(&submissions, 0)
            .expect("text batch ingest");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(count, text_n);
        count as f64 / secs
    };
    eprintln!("ingest_text_batch: {text_rate:.1} docs/sec");

    let single_thread_rate = rates
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|&(_, r)| r)
        .expect("thread counts include 1");
    let rows: Vec<Value> = rates
        .iter()
        .map(|&(threads, rate)| {
            let speedup = rate / single_thread_rate;
            eprintln!(
                "batch @ {threads:>2} thread(s): {rate:10.1} docs/sec  (speedup {speedup:.2}x)"
            );
            obj([
                ("threads", (threads as i64).into()),
                ("docs_per_sec", rate.into()),
                ("speedup_vs_1_thread", speedup.into()),
            ])
        })
        .collect();

    let report = obj([
        ("bench", "ingest_gold_batch".into()),
        ("meta", create_bench::meta_json(n)),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 1234_i64.into()),
        ("cpus", (cpus as i64).into()),
        ("sequential_docs_per_sec", seq_rate.into()),
        ("deterministic", true.into()),
        ("text_docs_per_sec", text_rate.into()),
        ("runs", Value::Array(rows)),
        // Per-stage latency distributions accumulated in the obs
        // registry across every run above. Gold batches exercise
        // graph_build and index_write; the text-ingest phase drives
        // section_split, ner, and temporal_re, and batch workers flush
        // their stage observations into the registry at apply time —
        // every stage row carries a nonzero count.
        (
            "pipeline_stages",
            create_bench::stage_histograms_json(
                create_obs::names::PIPELINE_STAGE_SECONDS,
                &create_obs::names::PIPELINE_STAGES,
            ),
        ),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");
}
