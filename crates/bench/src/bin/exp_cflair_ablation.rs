//! E2 extension — C-FLAIR configuration ablation (DESIGN.md ablation #4).
//!
//! Sweeps the character-LM order and the hashed n-gram embedding dimension
//! of the C-FLAIR feature block on the noisy-submissions dataset (the
//! regime where the embeddings matter), reporting the span-F1 delta over
//! the no-embedding CRF averaged across seeds.

use create_bench::{f4, train_tagger, Table};
use create_corpus::{CorpusConfig, Generator};
use create_ml::embed::EmbedConfig;
use create_ner::eval::span_f1;
use create_ner::{FlairFeatures, LabelSet, NerDataset};
use std::sync::Arc;

const SEEDS: [u64; 3] = [11, 22, 33];
const EPOCHS: usize = 6;

fn main() {
    let configs: Vec<(&str, usize, usize)> = vec![
        // (label, lm order, ngram dim)
        ("order=2, dim=48", 2, 48),
        ("order=4, dim=24", 4, 24),
        ("order=4, dim=48 (default)", 4, 48),
        ("order=4, dim=96", 4, 96),
        ("order=6, dim=48", 6, 48),
    ];
    let mut table = Table::new(&["config", "CRF baseline F1", "CRF+C-FLAIR F1", "delta"]);

    for (label, order, dim) in configs {
        eprintln!("[{label}]…");
        let mut base_sum = 0.0;
        let mut flair_sum = 0.0;
        for &seed in &SEEDS {
            let reports = Generator::new(CorpusConfig {
                num_reports: 250,
                seed,
                typo_rate: 0.18,
                ..Default::default()
            })
            .generate();
            let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
            let (train, test) = dataset.split(0.13);
            let crf = train_tagger(&train, None, None, EPOCHS);
            base_sum += span_f1(&crf, &test).0.f1;
            let flair = Arc::new(FlairFeatures::pretrain_with(
                &train.raw_text(),
                7,
                order,
                EmbedConfig {
                    ngram_dim: dim,
                    ..Default::default()
                },
            ));
            let crf_flair = train_tagger(&train, None, Some(flair), EPOCHS);
            flair_sum += span_f1(&crf_flair, &test).0.f1;
        }
        let n = SEEDS.len() as f64;
        table.row(vec![
            label.to_string(),
            f4(base_sum / n),
            f4(flair_sum / n),
            format!("{:+.2}", (flair_sum - base_sum) / n * 100.0),
        ]);
    }
    table.print("E2 extension — C-FLAIR order/dimension sweep (noisy dataset, mean of 3 seeds)");
}
