//! Experiment E3 — temporal relation extraction (Section III-C claim:
//! the PSL-regularized approach "significantly outperforms baseline
//! methods by 1.98% and 2.01% per F1 score" on I2B2-2012 and TB-Dense).
//!
//! Ladder on each dataset (pairwise micro F1):
//!   local classifier (baseline)
//!   < local + global inference only
//!   < PSL-regularized training (no global inference)
//!   ≤ PSL + global inference (the paper's full system).
//!
//! Also prints the λ (PSL weight) sweep — the ablation DESIGN.md calls out.

use create_bench::{f4, Table};
use create_corpus::temporal_data::{i2b2_like, tbdense_like, TemporalDataset};
use create_temporal::model::{TemporalModel, TrainMode, TrainOptions};

fn eval_variant(dataset: &TemporalDataset, mode: TrainMode, global: bool, psl_weight: f64) -> f64 {
    let (train, test) = dataset.split(0.8);
    let mut model = TemporalModel::train(
        &train,
        &dataset.labels,
        &TrainOptions {
            mode,
            psl_weight,
            ..Default::default()
        },
    );
    model.set_global_inference(global);
    model.evaluate(&test).0
}

fn main() {
    let datasets = vec![
        ("i2b2-2012-like", i2b2_like(42, 300)),
        ("tb-dense-like", tbdense_like(43, 250)),
    ];

    let mut table = Table::new(&[
        "dataset",
        "pairs",
        "local",
        "local+GI",
        "PSL",
        "PSL+GI (full)",
        "delta(full-local)",
    ]);
    let mut full_deltas = Vec::new();
    for (name, ds) in &datasets {
        eprintln!("[{name}] training 4 variants…");
        let local = eval_variant(ds, TrainMode::Local, false, 0.0);
        let local_gi = eval_variant(ds, TrainMode::Local, true, 0.0);
        let psl = eval_variant(ds, TrainMode::PslRegularized, false, 1.0);
        let full = eval_variant(ds, TrainMode::PslRegularized, true, 1.0);
        full_deltas.push((name, (full - local) * 100.0));
        table.row(vec![
            name.to_string(),
            ds.num_pairs().to_string(),
            f4(local),
            f4(local_gi),
            f4(psl),
            f4(full),
            format!("{:+.2}", (full - local) * 100.0),
        ]);
    }
    table.print("E3 — temporal relation extraction, pairwise micro F1");
    println!("paper shape: PSL+global beats local by ≈ +1.98 (I2B2) / +2.01 (TB-Dense) F1");
    for (name, d) in &full_deltas {
        println!("  measured on {name}: {d:+.2} F1");
    }

    // λ sweep ablation on the I2B2-like dataset.
    let ds = &datasets[0].1;
    let mut sweep = Table::new(&["psl_weight λ", "micro F1 (PSL+GI)"]);
    for &lambda in &[0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let f1 = eval_variant(ds, TrainMode::PslRegularized, true, lambda);
        sweep.row(vec![format!("{lambda}"), f4(f1)]);
    }
    sweep.print("E3 ablation — PSL loss weight sweep (i2b2-2012-like)");
}
