//! Experiment E1 — Figure 1: case-report category distribution.
//!
//! Paper claim: "Cardiovascular disease accounts for 20% of all case
//! reports, and is the 2nd largest category of case reports after cancer."
//! We generate 100k report metadata records and measure the category
//! shares, including the six CVD areas of Section III-A.

use create_bench::{pct, Table};
use create_corpus::{CorpusConfig, Generator};
use std::collections::BTreeMap;

fn main() {
    let n = 100_000;
    println!("generating {n} case-report metadata records (seed 1)…");
    let generator = Generator::new(CorpusConfig {
        num_reports: n,
        seed: 1,
        ..Default::default()
    });
    let reports = generator.generate();

    let mut coarse: BTreeMap<&str, usize> = BTreeMap::new();
    let mut cvd_areas: BTreeMap<String, usize> = BTreeMap::new();
    for r in &reports {
        *coarse.entry(r.category.coarse_label()).or_default() += 1;
        if let create_ontology::CaseCategory::Cardiovascular(area) = r.category {
            *cvd_areas.entry(area.label().to_string()).or_default() += 1;
        }
    }

    let mut shares: Vec<(&str, usize)> = coarse.into_iter().collect();
    shares.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let mut table = Table::new(&["category", "reports", "share"]);
    for (label, count) in &shares {
        table.row(vec![
            label.to_string(),
            count.to_string(),
            pct(*count as f64 / n as f64),
        ]);
    }
    table.print("Figure 1 — case-report category distribution");

    let cvd_total: usize = cvd_areas.values().sum();
    let mut areas = Table::new(&["CVD area (III-A)", "reports", "share of CVD"]);
    let mut sorted_areas: Vec<_> = cvd_areas.into_iter().collect();
    sorted_areas.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (label, count) in sorted_areas {
        areas.row(vec![
            label,
            count.to_string(),
            pct(count as f64 / cvd_total as f64),
        ]);
    }
    areas.print("CVD breakdown (the paper's six PubMed query areas)");

    // Paper-shape checks.
    let cvd_share = cvd_total as f64 / n as f64;
    let cancer_share = shares
        .iter()
        .find(|(l, _)| *l == "cancer")
        .map(|(_, c)| *c as f64 / n as f64)
        .unwrap_or(0.0);
    println!(
        "paper shape: CVD ≈ 20% → measured {:.1}%",
        cvd_share * 100.0
    );
    println!(
        "paper shape: cancer is largest, CVD 2nd → cancer {:.1}% > CVD {:.1}% > rest: {}",
        cancer_share * 100.0,
        cvd_share * 100.0,
        shares
            .iter()
            .filter(|(l, _)| *l != "cancer" && *l != "cardiovascular")
            .all(|(_, c)| (*c as f64 / n as f64) < cvd_share)
    );
}
