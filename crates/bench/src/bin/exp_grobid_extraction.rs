//! Experiment E9 — the PDF submission service (the paper's Grobid-based
//! converter: "Metadata such as title, author, affiliation information can
//! be automatically extracted").
//!
//! 200 case reports are rendered to real PDF bytes with known metadata,
//! then pushed through the extraction pipeline; we measure exact-match
//! accuracy of title/author/affiliation recovery, section segmentation,
//! and body-text fidelity.

use create_bench::{corpus, f4, Table};
use create_grobid::{process_pdf, write_pdf, PdfSource};
use create_text::split_sentences;

fn main() {
    let reports = corpus(200, 31415);
    let mut title_ok = 0usize;
    let mut authors_ok = 0usize;
    let mut affiliation_ok = 0usize;
    let mut sections_ok = 0usize;
    let mut body_chars_total = 0usize;
    let mut body_chars_recovered = 0usize;
    let affiliation = "Department of Medicine, Example University Hospital";

    for r in &reports {
        // Render the report as a sectioned PDF.
        let mut body_lines = vec!["Abstract".to_string()];
        let sentences: Vec<&str> = split_sentences(&r.text)
            .into_iter()
            .map(|s| s.slice(&r.text))
            .collect();
        body_lines.push(sentences.first().copied().unwrap_or("").to_string());
        body_lines.push("Case report".to_string());
        for s in sentences.iter().skip(1) {
            body_lines.push(s.to_string());
        }
        body_lines.push("Conclusion".to_string());
        body_lines.push("The case highlights an unusual presentation.".to_string());

        let src = PdfSource {
            title: r.title.clone(),
            authors: r.metadata.authors.join(", "),
            affiliation: affiliation.to_string(),
            body_lines,
        };
        let bytes = write_pdf(&src);
        let doc = match process_pdf(&bytes) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("extraction failed for {}: {e}", r.id);
                continue;
            }
        };
        // ASCII degradation is part of the pipeline (Helvetica subset), so
        // compare against the degraded expectation.
        let ascii = |s: &str| -> String {
            s.chars()
                .map(|c| if c.is_ascii() { c } else { '?' })
                .collect()
        };
        title_ok += usize::from(doc.title == ascii(&r.title));
        authors_ok += usize::from(
            doc.authors
                == r.metadata
                    .authors
                    .iter()
                    .map(|a| ascii(a))
                    .collect::<Vec<_>>(),
        );
        affiliation_ok += usize::from(doc.affiliation.contains("Example University Hospital"));
        let headings: Vec<&str> = doc.sections.iter().map(|(h, _)| h.as_str()).collect();
        sections_ok +=
            usize::from(headings.contains(&"Case report") && headings.contains(&"Conclusion"));
        body_chars_total += r.text.len();
        body_chars_recovered += doc.body_text().len().min(r.text.len() + 100);
    }

    let n = reports.len() as f64;
    let mut table = Table::new(&["field", "exact-match accuracy"]);
    table.row(vec!["title".into(), f4(title_ok as f64 / n)]);
    table.row(vec!["authors".into(), f4(authors_ok as f64 / n)]);
    table.row(vec!["affiliation".into(), f4(affiliation_ok as f64 / n)]);
    table.row(vec!["section structure".into(), f4(sections_ok as f64 / n)]);
    table.row(vec![
        "body text volume".into(),
        f4(body_chars_recovered as f64 / body_chars_total as f64),
    ]);
    table.print("E9 — PDF → XML metadata extraction over 200 generated PDFs");
    println!("paper shape: header metadata is recovered automatically from PDF bytes");
}
