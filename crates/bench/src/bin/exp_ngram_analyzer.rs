//! Experiment E8 — the customized N-gram analyzer (Section III-D:
//! "considering that some of the symptoms or medications may have longer
//! names, we select N-gram tokenizer and customize it with min_gram=3 and
//! max_gram=25").
//!
//! Measures what the configuration buys: recall of partial/truncated
//! medication-name queries under the standard analyzer vs the n-gram
//! analyzer, against the index-size and query-latency cost, across n-gram
//! bounds.

use create_bench::{corpus, f4, Table};
use create_index::{FieldConfig, Index, QueryNode, Scorer};
use create_text::filter::{AsciiFoldingFilter, LowercaseFilter};
use create_text::{Analyzer, NGramTokenizer};
use create_util::Rng;
use std::sync::Arc;
use std::time::Instant;

fn ngram_analyzer(min: usize, max: usize) -> Analyzer {
    Analyzer::builder(format!("ngram_{min}_{max}"))
        .tokenizer(NGramTokenizer::new(min, max))
        .filter(AsciiFoldingFilter)
        .filter(LowercaseFilter)
        .build()
}

fn main() {
    let reports = corpus(2_000, 4242);
    // Collect long medication / disease surfaces that actually occur.
    let mut rng = Rng::seed_from_u64(1);
    let mut long_terms: Vec<(String, String)> = Vec::new(); // (term, report id)
    for r in &reports {
        for e in &r.entities {
            if matches!(
                e.etype,
                create_ontology::EntityType::Medication
                    | create_ontology::EntityType::DiseaseDisorder
            ) && e.text.len() >= 9
                && e.text
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '-' || c == ' ')
            {
                long_terms.push((e.text.to_lowercase(), r.id.clone()));
            }
        }
    }
    long_terms.sort();
    long_terms.dedup();
    rng.shuffle(&mut long_terms);
    long_terms.truncate(150);
    println!(
        "{} reports, {} long-term query probes (e.g. {:?})",
        reports.len(),
        long_terms.len(),
        &long_terms[..3.min(long_terms.len())]
            .iter()
            .map(|(t, _)| t.as_str())
            .collect::<Vec<_>>()
    );

    let configs: Vec<(String, Option<(usize, usize)>)> = vec![
        ("standard (stemmed)".to_string(), None),
        ("ngram(2,10)".to_string(), Some((2, 10))),
        ("ngram(3,25) [paper]".to_string(), Some((3, 25))),
        ("ngram(4,25)".to_string(), Some((4, 25))),
        ("ngram(5,8)".to_string(), Some((5, 8))),
    ];

    let mut table = Table::new(&[
        "analyzer",
        "index MB",
        "build s",
        "full recall",
        "prefix recall",
        "infix recall",
        "mean query µs",
    ]);

    for (name, grams) in configs {
        let analyzer: Arc<Analyzer> = match grams {
            None => Arc::new(Analyzer::clinical_standard()),
            Some((lo, hi)) => Arc::new(ngram_analyzer(lo, hi)),
        };
        let mut index = Index::new(vec![FieldConfig {
            name: "body".to_string(),
            analyzer: Arc::clone(&analyzer),
            boost: 1.0,
        }]);
        let build_start = Instant::now();
        for r in &reports {
            index
                .add_document(&r.id, &[("body", &r.text)])
                .expect("index");
        }
        let build_s = build_start.elapsed().as_secs_f64();

        // Probe sets: full term, prefix (first 6 chars), infix (middle 6).
        let probe = |probe_text: &str, want_id: &str, micros: &mut Vec<f64>| -> bool {
            let q = QueryNode::query_string(&index, "body", probe_text);
            let t = Instant::now();
            let hits = index.search(&q, 10, Scorer::default());
            micros.push(t.elapsed().as_secs_f64() * 1e6);
            hits.iter().any(|h| h.external_id == want_id)
        };
        let mut micros = Vec::new();
        let mut full = 0usize;
        let mut prefix = 0usize;
        let mut infix = 0usize;
        for (term, id) in &long_terms {
            let chars: Vec<char> = term.chars().collect();
            full += usize::from(probe(term, id, &mut micros));
            let p: String = chars[..6.min(chars.len())].iter().collect();
            prefix += usize::from(probe(&p, id, &mut micros));
            let mid = chars.len() / 2;
            let lo = mid.saturating_sub(3);
            let hi = (mid + 3).min(chars.len());
            let infix_probe: String = chars[lo..hi].iter().collect();
            infix += usize::from(probe(&infix_probe, id, &mut micros));
        }
        let n = long_terms.len() as f64;
        table.row(vec![
            name,
            format!("{:.1}", index.postings_bytes() as f64 / 1e6),
            format!("{build_s:.1}"),
            f4(full as f64 / n),
            f4(prefix as f64 / n),
            f4(infix as f64 / n),
            format!("{:.0}", micros.iter().sum::<f64>() / micros.len() as f64),
        ]);
    }
    table.print("E8 — analyzer configurations: recall vs cost");
    println!(
        "paper shape: ngram(3,25) recovers prefix/infix matches the standard analyzer misses, \
         at a multi-x index-size cost"
    );
}
