//! Experiment E5 — Figure 5: temporal transitivity reasoning.
//!
//! Reconstructs the paper's worked example (the COVID-19 case with events
//! a–g) and verifies the published inference ("given that b happened
//! before d, e happened after d and e happened simultaneously with f, we
//! can infer according to the temporal transitivity rule that b was before
//! f"), then measures closure yield and consistency detection on random
//! timeline graphs.

use create_bench::Table;
use create_ontology::RelationType;
use create_temporal::TemporalGraph;
use create_util::Rng;

fn main() {
    // ---- The Fig-5 example itself ----
    let g = TemporalGraph::fig5_example();
    let mut table = Table::new(&["pair", "stated?", "inferred relation"]);
    let letters = |i: usize| (b'a' + i as u8) as char;
    for (a, b) in [(1usize, 3usize), (4, 3), (4, 5), (1, 5), (1, 6), (0, 6)] {
        let stated = g
            .edges()
            .iter()
            .any(|&(s, t, _)| (s == a && t == b) || (s == b && t == a));
        table.row(vec![
            format!("{} vs {}", letters(a), letters(b)),
            if stated { "yes" } else { "no (derived)" }.to_string(),
            g.infer(a, b)
                .map(|r| r.label().to_string())
                .unwrap_or("-".into()),
        ]);
    }
    table.print("E5 — Fig. 5 temporal graph inference");
    assert_eq!(
        g.infer(1, 5),
        Some(RelationType::Before),
        "the paper's b-before-f inference must hold"
    );
    println!("paper inference 'b BEFORE f': confirmed");

    // ---- Closure yield on random timeline graphs ----
    let mut rng = Rng::seed_from_u64(5);
    let trials = 200;
    let mut stated_total = 0usize;
    let mut derived_total = 0usize;
    let mut consistent = 0usize;
    for _ in 0..trials {
        let n = rng.range(5, 12);
        // Random timeline: each event gets a step; sparse stated edges.
        let steps: Vec<u32> = (0..n).map(|_| rng.below(6) as u32).collect();
        let mut graph = TemporalGraph::new((0..n).map(|i| format!("e{i}")).collect());
        let mut stated = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.chance(0.3) {
                    let rel = match steps[i].cmp(&steps[j]) {
                        std::cmp::Ordering::Less => RelationType::Before,
                        std::cmp::Ordering::Greater => RelationType::After,
                        std::cmp::Ordering::Equal => RelationType::Overlap,
                    };
                    graph.add_edge(i, j, rel);
                    stated += 1;
                }
            }
        }
        stated_total += stated;
        derived_total += graph.closure().len();
        consistent += usize::from(graph.is_consistent());
    }
    println!(
        "\nrandom timeline graphs ({trials} trials): {} stated BEFORE/OVERLAP edges \
         expanded to {} derivable BEFORE pairs ({:.1}x); {}/{} consistent (expected all)",
        stated_total,
        derived_total,
        derived_total as f64 / stated_total.max(1) as f64,
        consistent,
        trials
    );

    // ---- Inconsistency detection ----
    let mut detected = 0usize;
    let corrupt_trials = 100;
    for t in 0..corrupt_trials {
        let mut graph = TemporalGraph::new((0..4).map(|i| format!("e{i}")).collect());
        graph.add_edge(0, 1, RelationType::Before);
        graph.add_edge(1, 2, RelationType::Before);
        // Deliberate cycle closure.
        if t % 2 == 0 {
            graph.add_edge(2, 0, RelationType::Before);
        } else {
            graph.add_edge(0, 2, RelationType::After);
        }
        if !graph.is_consistent() {
            detected += 1;
        }
    }
    println!(
        "inconsistency detection: {detected}/{corrupt_trials} corrupted graphs flagged (expected all)"
    );
}
