//! Experiment E7 — Figure 7: force-directed visualization.
//!
//! Runs the full pipeline on the paper's query ("A patient was admitted to
//! the hospital because of fever and cough"), takes the best-matching
//! report, renders its event graph as SVG, and reports the layout
//! diagnostics: energy trajectory (must decrease), displacement cooling,
//! and minimum node separation (no overlap at convergence).

use create_bench::{loaded_create, Table};
use create_util::Rng;
use create_viz::{ForceLayout, LayoutConfig};

fn main() {
    let (system, _) = loaded_create(500, 777);
    let query = "A patient was admitted to the hospital because of fever and cough.";
    let hits = system.search(query, 3);
    println!("query: {query}");
    assert!(!hits.is_empty(), "query must match something");
    let top = &hits[0];
    println!(
        "top match: {} (source {:?}, pattern matched: {})",
        top.report_id, top.source, top.pattern_matched
    );
    let svg = system
        .visualize(&top.report_id)
        .expect("top hit has an event graph");
    let path = std::env::temp_dir().join("create_fig7.svg");
    std::fs::write(&path, &svg).expect("write svg");
    println!(
        "rendered Fig-7 style SVG ({} bytes, {} nodes) → {}",
        svg.len(),
        svg.matches("<circle").count(),
        path.display()
    );

    // Layout convergence diagnostics over random graphs of growing size.
    let mut table = Table::new(&[
        "nodes",
        "edges",
        "energy start",
        "energy end",
        "disp first10",
        "disp last10",
        "min node dist",
    ]);
    let mut rng = Rng::seed_from_u64(7);
    for &n in &[8usize, 16, 32, 64] {
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.below(i), i)); // random tree
        }
        for _ in 0..n / 2 {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let num_edges = edges.len();
        // Frame area scales with node count, as the real UI's canvas does
        // when zooming to fit.
        let side = 300.0 * (n as f64).sqrt();
        let config = LayoutConfig {
            width: side,
            height: side * 0.75,
            ..Default::default()
        };
        let mut layout = ForceLayout::new(n, edges, config);
        let e0 = layout.energy();
        let trace = layout.run();
        let e1 = layout.energy();
        table.row(vec![
            n.to_string(),
            num_edges.to_string(),
            format!("{e0:.0}"),
            format!("{e1:.0}"),
            format!("{:.1}", trace[..10].iter().sum::<f64>()),
            format!("{:.1}", trace[trace.len() - 10..].iter().sum::<f64>()),
            format!("{:.1}", layout.min_pair_distance()),
        ]);
    }
    table.print("E7 — force-directed layout convergence");
    println!("paper shape: energy decreases, displacement cools, nodes stay separated");
}
