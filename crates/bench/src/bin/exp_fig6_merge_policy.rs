//! Experiment E6 — Figure 6: the search workflow's merge policy.
//!
//! The paper's default places Neo4j (graph) results on top, followed by
//! ElasticSearch results. This ablation compares all five policies on the
//! judged workload, split by query family — the paper's choice should win
//! on relation/temporal queries and tie on keyword queries.

use create_bench::{f4, loaded_create, Table};
use create_core::eval::{ndcg_at_k, precision_at_k, reciprocal_rank, IrMetrics};
use create_core::MergePolicy;
use create_corpus::{QueryFamily, QuerySet};

fn main() {
    let (system, reports) = loaded_create(1_500, 1618);
    let queries = QuerySet::generate(&reports, 17, 100);
    eprintln!(
        "system: {} reports; {} judged queries",
        reports.len(),
        queries.queries.len()
    );

    let policies = [
        ("neo4j_first (paper)", MergePolicy::Neo4jFirst),
        ("es_first", MergePolicy::EsFirst),
        ("interleave", MergePolicy::Interleave),
        ("graph_only", MergePolicy::GraphOnly),
        ("es_only (solr)", MergePolicy::EsOnly),
    ];

    let mut overall = Table::new(&["policy", "P@10", "MRR", "nDCG@10"]);
    for (name, policy) in policies {
        let per_query: Vec<(f64, f64, f64)> = queries
            .queries
            .iter()
            .map(|q| {
                let ids: Vec<String> = system
                    .search_with_policy(&q.text, 10, policy)
                    .into_iter()
                    .map(|h| h.report_id)
                    .collect();
                (
                    precision_at_k(&ids, &q.judgments, 10),
                    reciprocal_rank(&ids, &q.judgments),
                    ndcg_at_k(&ids, &q.judgments, 10),
                )
            })
            .collect();
        let m = IrMetrics::aggregate(&per_query);
        overall.row(vec![
            name.to_string(),
            f4(m.p_at_10),
            f4(m.mrr),
            f4(m.ndcg_at_10),
        ]);
    }
    overall.print("E6 — merge-policy ablation (all queries)");

    let mut per_family = Table::new(&[
        "family",
        "neo4j_first",
        "es_first",
        "interleave",
        "graph_only",
        "es_only",
    ]);
    for family in [
        QueryFamily::Keyword,
        QueryFamily::Entity,
        QueryFamily::Relation,
        QueryFamily::Temporal,
    ] {
        let fam = queries.of_family(family);
        let mut cells = vec![format!("{} (n={})", family.label(), fam.len())];
        for (_, policy) in policies {
            let mean: f64 = fam
                .iter()
                .map(|q| {
                    let ids: Vec<String> = system
                        .search_with_policy(&q.text, 10, policy)
                        .into_iter()
                        .map(|h| h.report_id)
                        .collect();
                    ndcg_at_k(&ids, &q.judgments, 10)
                })
                .sum::<f64>()
                / fam.len().max(1) as f64;
            cells.push(f4(mean));
        }
        per_family.row(cells);
    }
    per_family.print("E6 — nDCG@10 per query family");
    println!(
        "paper shape: neo4j_first ≥ es_first / es_only overall, driven by relation+temporal families"
    );
}
