//! Concurrent read/write harness for the snapshot-isolated facade.
//!
//! Pre-fills a `Create` system with half the corpus, then streams the
//! remaining half through `ingest_gold_batch` on a writer thread while
//! reader threads run a seeded search workload the whole time. Because
//! reads execute against Arc-published immutable snapshots, searches
//! never block on the writer: the harness records search throughput and
//! latency percentiles, how many searches completed while a batch ingest
//! was in flight, and the snapshot-publish latency histogram from the obs
//! registry. A final shard-count sweep (1/2/4/8 shards) records ingest
//! throughput, search qps, and mean publish latency at each width.
//! A connection-storm phase then drives the evented HTTP server with
//! hundreds of concurrent keep-alive sockets (pipelined `GET /search`
//! plus a `POST /submit_batch` writer mix), compares request throughput
//! against a close-per-response baseline over the same routes, and
//! probes graceful drain under load. Writes `BENCH_concurrent.json`;
//! scripts/verify.sh gates on searches overlapping ingest, on read p99
//! staying well below a single batch-ingest duration, and on the storm
//! finishing with zero request errors inside its p99 bound.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_concurrent            # 600 docs
//! cargo run --release -p create-bench --bin bench_concurrent -- 200 out.json 64
//! ```

use create_core::{Create, CreateConfig};
use create_corpus::QuerySet;
use create_docstore::json::obj;
use create_docstore::Value;
use create_server::{build_api, KeepAliveClient, Server, ServerConfig};
use create_util::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 10;
const READERS: usize = 4;
const STREAM_BATCH: usize = 25;
/// Requests written back-to-back per keep-alive batch. Matches the
/// server's per-unit dispatch cap so each batch is collected, executed,
/// and flushed as one unit.
const PIPELINE_DEPTH: usize = 32;
/// Pipelined batches per storm connection — enough requests per socket
/// that per-thread setup cost and transient host noise disappear into
/// the measurement.
const BATCHES_PER_CONN: usize = 12;
/// Sequential `POST /submit_batch` round trips per writer connection.
/// Writes are deliberately sparse (a read-heavy search console): each
/// submit republishes the snapshot, which costs milliseconds and
/// invalidates the query caches — real work, but the storm measures the
/// connection layer, not the publish pipeline.
const SUBMITS_PER_CONN: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(600);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_concurrent.json".to_string());
    let storm_conns: usize = args
        .next()
        .map(|a| a.parse().expect("storm connections must be an integer"))
        .unwrap_or(256);

    eprintln!("generating {n} synthetic reports...");
    let reports = create_bench::corpus(n, 1234);
    let prefill = n / 2;
    let (base, stream) = reports.split_at(prefill);

    let system = Arc::new(Create::new(CreateConfig::default()));
    system
        .ingest_gold_batch(base, 0)
        .expect("prefill ingest");
    let query_texts: Vec<String> = QuerySet::generate(&reports, 4321, 20)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();

    // One warm pass so readers start from a realistic mixed cache state.
    for q in &query_texts {
        system.search(q, K);
    }

    let ingest_in_flight = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(query_texts);

    eprintln!(
        "streaming {} docs in batches of {STREAM_BATCH} under {READERS} readers...",
        stream.len()
    );
    let mut readers = Vec::new();
    for r in 0..READERS {
        let system = Arc::clone(&system);
        let queries = Arc::clone(&queries);
        let ingest_in_flight = Arc::clone(&ingest_in_flight);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut rng = Rng::seed_from_u64(1000 + r as u64);
            // (latency_nanos, started while a batch ingest was in flight)
            let mut samples: Vec<(u64, bool)> = Vec::new();
            while !done.load(Ordering::SeqCst) {
                let q = &queries[rng.below(queries.len())];
                let during = ingest_in_flight.load(Ordering::SeqCst);
                let started = Instant::now();
                let hits = system.search(q, K);
                let nanos = started.elapsed().as_nanos() as u64;
                std::hint::black_box(hits);
                samples.push((nanos, during));
            }
            samples
        }));
    }

    let writer = {
        let system = Arc::clone(&system);
        let ingest_in_flight = Arc::clone(&ingest_in_flight);
        let done = Arc::clone(&done);
        let stream: Vec<_> = stream.to_vec();
        std::thread::spawn(move || {
            let mut batch_secs: Vec<f64> = Vec::new();
            for batch in stream.chunks(STREAM_BATCH) {
                ingest_in_flight.store(true, Ordering::SeqCst);
                let started = Instant::now();
                system.ingest_gold_batch(batch, 2).expect("stream ingest");
                batch_secs.push(started.elapsed().as_secs_f64());
                ingest_in_flight.store(false, Ordering::SeqCst);
            }
            done.store(true, Ordering::SeqCst);
            batch_secs
        })
    };

    let batch_secs = writer.join().expect("writer thread");
    let mut samples: Vec<(u64, bool)> = Vec::new();
    for reader in readers {
        samples.extend(reader.join().expect("reader thread"));
    }

    let searches_total = samples.len();
    let searches_during_ingest = samples.iter().filter(|(_, during)| *during).count();
    let window_secs: f64 = batch_secs.iter().sum();
    let search_qps = searches_total as f64 / window_secs.max(f64::MIN_POSITIVE);

    let mut latencies: Vec<u64> = samples.iter().map(|(nanos, _)| *nanos).collect();
    latencies.sort_unstable();
    let p50 = percentile_secs(&latencies, 0.50);
    let p99 = percentile_secs(&latencies, 0.99);
    let max_batch = batch_secs.iter().cloned().fold(0.0f64, f64::max);
    let min_batch = batch_secs.iter().cloned().fold(f64::INFINITY, f64::min);

    let publishes = create_obs::counter(create_obs::names::SNAPSHOT_PUBLISH_TOTAL).get();
    let publish_hist = create_obs::histogram(create_obs::names::SNAPSHOT_PUBLISH_SECONDS);

    eprintln!(
        "searches: {searches_total} total ({searches_during_ingest} during ingest)  \
         {search_qps:.1} q/s  p50 {:.3} ms  p99 {:.3} ms",
        p50 * 1e3,
        p99 * 1e3
    );
    eprintln!(
        "ingest batches: {} ({:.3}-{:.3} s each)  snapshot publishes: {publishes}",
        batch_secs.len(),
        min_batch,
        max_batch
    );

    assert!(
        searches_during_ingest > 0,
        "no search completed while a batch ingest was in flight — reads are \
         blocking on the writer"
    );

    // Shard-count sweep: the same corpus and query workload against 1, 2,
    // 4, and 8 shards, recording batch-ingest throughput, search qps, and
    // mean publish latency (read as the delta the run adds to the global
    // publish histogram). Rankings are bit-identical across shard counts
    // (gated by tests/shard_equivalence.rs); this records what the
    // fan-out costs and buys at each width.
    let sweep_docs = prefill.min(200);
    let sweep_reps = 3usize;
    let mut sweep_rows: Vec<Value> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let sharded = Create::new(CreateConfig {
            shards,
            ..Default::default()
        });
        let pub_count_before = publish_hist.count();
        let pub_sum_before = publish_hist.sum();
        let started = Instant::now();
        sharded
            .ingest_gold_batch(&reports[..sweep_docs], 0)
            .expect("sweep ingest");
        let ingest_rate = sweep_docs as f64 / started.elapsed().as_secs_f64();
        let publish_delta_count = publish_hist.count() - pub_count_before;
        let publish_mean = if publish_delta_count > 0 {
            (publish_hist.sum() - pub_sum_before) / publish_delta_count as f64
        } else {
            0.0
        };
        let started = Instant::now();
        let mut sweep_searches = 0usize;
        for _ in 0..sweep_reps {
            for q in queries.iter() {
                std::hint::black_box(sharded.search(q, K));
                sweep_searches += 1;
            }
        }
        let qps = sweep_searches as f64 / started.elapsed().as_secs_f64();
        eprintln!(
            "sweep @ {shards} shard(s): ingest {ingest_rate:8.1} docs/sec  \
             search {qps:8.1} q/s  publish mean {:.3} ms",
            publish_mean * 1e3
        );
        sweep_rows.push(obj([
            ("shards", (shards as i64).into()),
            ("ingest_docs_per_sec", ingest_rate.into()),
            ("search_qps", qps.into()),
            ("publish_mean_seconds", publish_mean.into()),
            ("publishes", (publish_delta_count as i64).into()),
        ]));
    }

    // ---- Connection storm: keep-alive + pipelining vs close-per-response ----
    //
    // The same loaded system behind the REST API, hammered by
    // `storm_conns` concurrent keep-alive sockets running pipelined
    // `GET /search` (a small slice of them streaming `POST
    // /submit_batch` writes), then by the same client count doing
    // one-connection-per-request with `Connection: close`. The ratio is
    // what the evented loop buys over the old thread-per-connection
    // close-every-response server.
    let dataset = create_ner::NerDataset::from_reports(
        &reports[..prefill.min(50)],
        create_ner::LabelSet::ner_targets(),
    );
    let tagger = create_bench::train_tagger(&dataset, Some(system.ontology()), None, 2);
    system.attach_tagger(tagger);

    let server =
        Server::bind_with("127.0.0.1:0", build_api(Arc::clone(&system)), ServerConfig::default())
            .expect("bind storm server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    let submit_conns = (storm_conns / 64).max(1);
    let get_conns = storm_conns - submit_conns;
    let search_paths: Arc<Vec<String>> = Arc::new(
        queries
            .iter()
            .map(|q| format!("/search?q={}&k={K}", url_encode(q)))
            .collect(),
    );

    eprintln!(
        "connection storm: {get_conns} keep-alive search conns (depth {PIPELINE_DEPTH} x \
         {BATCHES_PER_CONN} batches) + {submit_conns} submit conns..."
    );
    // All sockets connect before the clock starts (standard load-gen
    // methodology: the metric is steady-state request throughput at the
    // target concurrency, not connection-establishment time).
    let barrier = Arc::new(std::sync::Barrier::new(get_conns + submit_conns + 1));
    let mut storm_threads = Vec::new();
    for c in 0..get_conns {
        let paths = Arc::clone(&search_paths);
        let barrier = Arc::clone(&barrier);
        storm_threads.push(std::thread::spawn(move || {
            storm_search_client(addr, &paths, 7000 + c as u64, &barrier)
        }));
    }
    for c in 0..submit_conns {
        let barrier = Arc::clone(&barrier);
        storm_threads.push(std::thread::spawn(move || storm_submit_client(addr, c, &barrier)));
    }
    barrier.wait();
    let storm_started = Instant::now();
    let mut storm = StormStats::default();
    for t in storm_threads {
        storm.merge(t.join().expect("storm client thread"));
    }
    let storm_secs = storm_started.elapsed().as_secs_f64();
    let storm_total = storm.ok + storm.shed + storm.errors;
    let storm_qps = storm_total as f64 / storm_secs.max(f64::MIN_POSITIVE);
    storm.latencies.sort_unstable();
    let storm_p50 = percentile_secs(&storm.latencies, 0.50);
    let storm_p99 = percentile_secs(&storm.latencies, 0.99);
    eprintln!(
        "storm: {storm_total} requests in {storm_secs:.2}s = {storm_qps:.0} req/s  \
         p50 {:.3} ms  p99 {:.3} ms  ok {}  shed {}  errors {}",
        storm_p50 * 1e3,
        storm_p99 * 1e3,
        storm.ok,
        storm.shed,
        storm.errors
    );

    eprintln!(
        "baseline: same workload, close-per-response ({get_conns} search + {submit_conns} \
         submit clients)..."
    );
    let baseline_barrier = Arc::new(std::sync::Barrier::new(get_conns + submit_conns + 1));
    let mut baseline_threads = Vec::new();
    for c in 0..get_conns {
        let paths = Arc::clone(&search_paths);
        let barrier = Arc::clone(&baseline_barrier);
        baseline_threads.push(std::thread::spawn(move || {
            barrier.wait();
            baseline_close_client(addr, &paths, 9000 + c as u64)
        }));
    }
    for c in 0..submit_conns {
        let barrier = Arc::clone(&baseline_barrier);
        baseline_threads.push(std::thread::spawn(move || {
            barrier.wait();
            baseline_submit_client(addr, c)
        }));
    }
    baseline_barrier.wait();
    let baseline_started = Instant::now();
    let mut baseline = StormStats::default();
    for t in baseline_threads {
        baseline.merge(t.join().expect("baseline client thread"));
    }
    let baseline_secs = baseline_started.elapsed().as_secs_f64();
    let baseline_total = baseline.ok + baseline.shed + baseline.errors;
    let baseline_qps = baseline_total as f64 / baseline_secs.max(f64::MIN_POSITIVE);
    let speedup = storm_qps / baseline_qps.max(f64::MIN_POSITIVE);
    eprintln!(
        "baseline: {baseline_total} requests in {baseline_secs:.2}s = {baseline_qps:.0} req/s  \
         keep-alive speedup {speedup:.1}x"
    );

    // Graceful drain under load: park requests on workers, fire shutdown,
    // and require every in-flight response to still arrive.
    let drain_clients = 16usize.min(storm_conns);
    let mut probes = Vec::new();
    for c in 0..drain_clients {
        let path = search_paths[c % search_paths.len()].clone();
        probes.push(std::thread::spawn(move || {
            let mut client = KeepAliveClient::connect(addr).ok()?;
            client.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
            client.send_get(&path).ok()?;
            Some(client)
        }));
    }
    let clients: Vec<Option<KeepAliveClient>> =
        probes.into_iter().map(|t| t.join().expect("drain probe")).collect();
    std::thread::sleep(Duration::from_millis(200)); // let the loop admit them
    shutdown.shutdown();
    let mut drain_completed = 0usize;
    let mut drain_errors = 0usize;
    for client in clients {
        match client.map(|mut c| c.read_response()) {
            Some(Ok(resp)) if resp.status == 200 => drain_completed += 1,
            _ => drain_errors += 1,
        }
    }
    server_thread.join().expect("server thread");
    eprintln!(
        "drain probe: {drain_completed}/{drain_clients} in-flight requests completed \
         through shutdown ({drain_errors} errors)"
    );
    assert_eq!(
        drain_errors, 0,
        "graceful drain dropped in-flight requests on the floor"
    );

    let mut meta = create_bench::meta_json(n);
    if let Value::Object(map) = &mut meta {
        map.insert("storm_connections".to_string(), (storm_conns as i64).into());
        map.insert(
            "storm_pipeline_depth".to_string(),
            (PIPELINE_DEPTH as i64).into(),
        );
    }

    let report = obj([
        ("bench", "concurrent".into()),
        ("meta", meta),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 1234_i64.into()),
        ("k", (K as i64).into()),
        ("readers", (READERS as i64).into()),
        ("prefill_docs", (prefill as i64).into()),
        ("stream_docs", (stream.len() as i64).into()),
        ("stream_batch_size", (STREAM_BATCH as i64).into()),
        ("searches_total", (searches_total as i64).into()),
        (
            "searches_during_ingest",
            (searches_during_ingest as i64).into(),
        ),
        ("search_qps", search_qps.into()),
        ("read_p50_seconds", p50.into()),
        ("read_p99_seconds", p99.into()),
        ("min_batch_ingest_seconds", min_batch.into()),
        ("max_batch_ingest_seconds", max_batch.into()),
        (
            "publish_latency",
            obj([
                ("count", (publish_hist.count() as i64).into()),
                ("sum_seconds", publish_hist.sum().into()),
                ("p50_seconds", publish_hist.quantile(0.50).into()),
                ("p95_seconds", publish_hist.quantile(0.95).into()),
                ("p99_seconds", publish_hist.quantile(0.99).into()),
            ]),
        ),
        ("snapshot_publishes", (publishes as i64).into()),
        ("shard_sweep", Value::Array(sweep_rows)),
        (
            "connection_storm",
            obj([
                ("connections", (storm_conns as i64).into()),
                ("search_connections", (get_conns as i64).into()),
                ("submit_connections", (submit_conns as i64).into()),
                ("pipeline_depth", (PIPELINE_DEPTH as i64).into()),
                ("batches_per_connection", (BATCHES_PER_CONN as i64).into()),
                ("requests_total", (storm_total as i64).into()),
                ("requests_ok", (storm.ok as i64).into()),
                ("requests_shed", (storm.shed as i64).into()),
                ("request_errors", (storm.errors as i64).into()),
                ("keepalive_qps", storm_qps.into()),
                ("keepalive_p50_seconds", storm_p50.into()),
                ("keepalive_p99_seconds", storm_p99.into()),
                ("baseline_requests", (baseline_total as i64).into()),
                ("baseline_close_qps", baseline_qps.into()),
                ("baseline_errors", (baseline.errors as i64).into()),
                ("speedup_vs_close", speedup.into()),
                (
                    "drain_probe",
                    obj([
                        ("clients", (drain_clients as i64).into()),
                        ("completed", (drain_completed as i64).into()),
                        ("errors", (drain_errors as i64).into()),
                    ]),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");
}

/// Per-thread storm tallies, merged across clients at the end.
#[derive(Default)]
struct StormStats {
    /// Per-response latency in nanos, measured from its batch's send.
    latencies: Vec<u64>,
    /// 2xx responses.
    ok: usize,
    /// Admission-control rejections (429/503) — none expected at default
    /// limits.
    shed: usize,
    /// I/O failures or unexpected statuses.
    errors: usize,
}

impl StormStats {
    fn merge(&mut self, other: StormStats) {
        self.latencies.extend(other.latencies);
        self.ok += other.ok;
        self.shed += other.shed;
        self.errors += other.errors;
    }

    fn record(&mut self, status: u16, nanos: u64) {
        self.latencies.push(nanos);
        match status {
            200 | 201 => self.ok += 1,
            429 | 503 => self.shed += 1,
            _ => self.errors += 1,
        }
    }
}

/// One keep-alive storm connection: `BATCHES_PER_CONN` batches of
/// `PIPELINE_DEPTH` pipelined `GET /search` requests.
fn storm_search_client(
    addr: std::net::SocketAddr,
    paths: &[String],
    seed: u64,
    barrier: &std::sync::Barrier,
) -> StormStats {
    let mut stats = StormStats::default();
    let total = BATCHES_PER_CONN * PIPELINE_DEPTH;
    let client = KeepAliveClient::connect(addr);
    barrier.wait();
    let Ok(mut client) = client else {
        stats.errors = total;
        return stats;
    };
    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..BATCHES_PER_CONN {
        let mut batch = String::new();
        for _ in 0..PIPELINE_DEPTH {
            let path = &paths[rng.below(paths.len())];
            batch.push_str("GET ");
            batch.push_str(path);
            batch.push_str(" HTTP/1.1\r\nHost: localhost\r\n\r\n");
        }
        let started = Instant::now();
        if client.send_raw(batch.as_bytes()).is_err() {
            stats.errors += PIPELINE_DEPTH;
            continue;
        }
        for _ in 0..PIPELINE_DEPTH {
            // Lean status-only parse: the load generator must stay cheaper
            // than the server or it becomes the bottleneck being measured.
            match client.read_status() {
                Ok(status) => stats.record(status, started.elapsed().as_nanos() as u64),
                Err(_) => stats.errors += 1,
            }
        }
    }
    stats
}

/// One keep-alive writer connection: sequential `POST /submit_batch`
/// round trips, one small document each.
fn storm_submit_client(
    addr: std::net::SocketAddr,
    client_id: usize,
    barrier: &std::sync::Barrier,
) -> StormStats {
    let mut stats = StormStats::default();
    let client = KeepAliveClient::connect(addr);
    barrier.wait();
    let Ok(mut client) = client else {
        stats.errors = SUBMITS_PER_CONN;
        return stats;
    };
    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
    for i in 0..SUBMITS_PER_CONN {
        if i > 0 {
            // Writes trickle: each one republishes the snapshot and
            // invalidates the query caches, which is workload, not the
            // connection layer under test.
            std::thread::sleep(Duration::from_millis(100));
        }
        let body = submit_body("storm", client_id, i);
        let started = Instant::now();
        match client.post("/submit_batch", &body) {
            Ok(resp) => stats.record(resp.status, started.elapsed().as_nanos() as u64),
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// One small single-document `POST /submit_batch` body with a unique id.
fn submit_body(prefix: &str, client_id: usize, i: usize) -> String {
    format!(
        "{{\"documents\":[{{\"id\":\"{prefix}-{client_id}-{i}\",\
         \"title\":\"Storm submission\",\
         \"text\":\"Patient presented with fever and cough on admission. \
         Started antibiotics the next day with gradual improvement.\",\
         \"year\":2021}}]}}"
    )
}

/// One close-per-response baseline client: the same request sequence as a
/// storm search client, but with a fresh TCP connection (and full
/// teardown) for every request, like the old thread-per-connection server
/// forced on clients.
fn baseline_close_client(
    addr: std::net::SocketAddr,
    paths: &[String],
    seed: u64,
) -> StormStats {
    let mut stats = StormStats::default();
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..BATCHES_PER_CONN * PIPELINE_DEPTH {
        let path = &paths[rng.below(paths.len())];
        let started = Instant::now();
        match create_server::server::http_get(addr, path) {
            Ok((status, _)) => stats.record(status, started.elapsed().as_nanos() as u64),
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Close-per-response counterpart of [`storm_submit_client`]: the same
/// writes, one fresh connection per `POST`.
fn baseline_submit_client(addr: std::net::SocketAddr, client_id: usize) -> StormStats {
    let mut stats = StormStats::default();
    for i in 0..SUBMITS_PER_CONN {
        if i > 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        let body = submit_body("storm-close", client_id, i);
        let started = Instant::now();
        match create_server::server::http_post(addr, "/submit_batch", &body) {
            Ok((status, _)) => stats.record(status, started.elapsed().as_nanos() as u64),
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Percent-encodes a query string component (space as `+`).
fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Nearest-rank percentile over sorted latencies, in seconds.
fn percentile_secs(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_nanos.len() as f64).ceil() as usize).clamp(1, sorted_nanos.len());
    sorted_nanos[rank - 1] as f64 / 1e9
}
