//! Concurrent read/write harness for the snapshot-isolated facade.
//!
//! Pre-fills a `Create` system with half the corpus, then streams the
//! remaining half through `ingest_gold_batch` on a writer thread while
//! reader threads run a seeded search workload the whole time. Because
//! reads execute against Arc-published immutable snapshots, searches
//! never block on the writer: the harness records search throughput and
//! latency percentiles, how many searches completed while a batch ingest
//! was in flight, and the snapshot-publish latency histogram from the obs
//! registry. A final shard-count sweep (1/2/4/8 shards) records ingest
//! throughput, search qps, and mean publish latency at each width.
//! Writes `BENCH_concurrent.json`; scripts/verify.sh gates on searches
//! overlapping ingest and on read p99 staying well below a single
//! batch-ingest duration.
//!
//! ```bash
//! cargo run --release -p create-bench --bin bench_concurrent            # 600 docs
//! cargo run --release -p create-bench --bin bench_concurrent -- 200 out.json
//! ```

use create_core::{Create, CreateConfig};
use create_corpus::QuerySet;
use create_docstore::json::obj;
use create_docstore::Value;
use create_util::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const READERS: usize = 4;
const STREAM_BATCH: usize = 25;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(600);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_concurrent.json".to_string());

    eprintln!("generating {n} synthetic reports...");
    let reports = create_bench::corpus(n, 1234);
    let prefill = n / 2;
    let (base, stream) = reports.split_at(prefill);

    let system = Arc::new(Create::new(CreateConfig::default()));
    system
        .ingest_gold_batch(base, 0)
        .expect("prefill ingest");
    let query_texts: Vec<String> = QuerySet::generate(&reports, 4321, 20)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();

    // One warm pass so readers start from a realistic mixed cache state.
    for q in &query_texts {
        system.search(q, K);
    }

    let ingest_in_flight = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(query_texts);

    eprintln!(
        "streaming {} docs in batches of {STREAM_BATCH} under {READERS} readers...",
        stream.len()
    );
    let mut readers = Vec::new();
    for r in 0..READERS {
        let system = Arc::clone(&system);
        let queries = Arc::clone(&queries);
        let ingest_in_flight = Arc::clone(&ingest_in_flight);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut rng = Rng::seed_from_u64(1000 + r as u64);
            // (latency_nanos, started while a batch ingest was in flight)
            let mut samples: Vec<(u64, bool)> = Vec::new();
            while !done.load(Ordering::SeqCst) {
                let q = &queries[rng.below(queries.len())];
                let during = ingest_in_flight.load(Ordering::SeqCst);
                let started = Instant::now();
                let hits = system.search(q, K);
                let nanos = started.elapsed().as_nanos() as u64;
                std::hint::black_box(hits);
                samples.push((nanos, during));
            }
            samples
        }));
    }

    let writer = {
        let system = Arc::clone(&system);
        let ingest_in_flight = Arc::clone(&ingest_in_flight);
        let done = Arc::clone(&done);
        let stream: Vec<_> = stream.to_vec();
        std::thread::spawn(move || {
            let mut batch_secs: Vec<f64> = Vec::new();
            for batch in stream.chunks(STREAM_BATCH) {
                ingest_in_flight.store(true, Ordering::SeqCst);
                let started = Instant::now();
                system.ingest_gold_batch(batch, 2).expect("stream ingest");
                batch_secs.push(started.elapsed().as_secs_f64());
                ingest_in_flight.store(false, Ordering::SeqCst);
            }
            done.store(true, Ordering::SeqCst);
            batch_secs
        })
    };

    let batch_secs = writer.join().expect("writer thread");
    let mut samples: Vec<(u64, bool)> = Vec::new();
    for reader in readers {
        samples.extend(reader.join().expect("reader thread"));
    }

    let searches_total = samples.len();
    let searches_during_ingest = samples.iter().filter(|(_, during)| *during).count();
    let window_secs: f64 = batch_secs.iter().sum();
    let search_qps = searches_total as f64 / window_secs.max(f64::MIN_POSITIVE);

    let mut latencies: Vec<u64> = samples.iter().map(|(nanos, _)| *nanos).collect();
    latencies.sort_unstable();
    let p50 = percentile_secs(&latencies, 0.50);
    let p99 = percentile_secs(&latencies, 0.99);
    let max_batch = batch_secs.iter().cloned().fold(0.0f64, f64::max);
    let min_batch = batch_secs.iter().cloned().fold(f64::INFINITY, f64::min);

    let publishes = create_obs::counter(create_obs::names::SNAPSHOT_PUBLISH_TOTAL).get();
    let publish_hist = create_obs::histogram(create_obs::names::SNAPSHOT_PUBLISH_SECONDS);

    eprintln!(
        "searches: {searches_total} total ({searches_during_ingest} during ingest)  \
         {search_qps:.1} q/s  p50 {:.3} ms  p99 {:.3} ms",
        p50 * 1e3,
        p99 * 1e3
    );
    eprintln!(
        "ingest batches: {} ({:.3}-{:.3} s each)  snapshot publishes: {publishes}",
        batch_secs.len(),
        min_batch,
        max_batch
    );

    assert!(
        searches_during_ingest > 0,
        "no search completed while a batch ingest was in flight — reads are \
         blocking on the writer"
    );

    // Shard-count sweep: the same corpus and query workload against 1, 2,
    // 4, and 8 shards, recording batch-ingest throughput, search qps, and
    // mean publish latency (read as the delta the run adds to the global
    // publish histogram). Rankings are bit-identical across shard counts
    // (gated by tests/shard_equivalence.rs); this records what the
    // fan-out costs and buys at each width.
    let sweep_docs = prefill.min(200);
    let sweep_reps = 3usize;
    let mut sweep_rows: Vec<Value> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let sharded = Create::new(CreateConfig {
            shards,
            ..Default::default()
        });
        let pub_count_before = publish_hist.count();
        let pub_sum_before = publish_hist.sum();
        let started = Instant::now();
        sharded
            .ingest_gold_batch(&reports[..sweep_docs], 0)
            .expect("sweep ingest");
        let ingest_rate = sweep_docs as f64 / started.elapsed().as_secs_f64();
        let publish_delta_count = publish_hist.count() - pub_count_before;
        let publish_mean = if publish_delta_count > 0 {
            (publish_hist.sum() - pub_sum_before) / publish_delta_count as f64
        } else {
            0.0
        };
        let started = Instant::now();
        let mut sweep_searches = 0usize;
        for _ in 0..sweep_reps {
            for q in queries.iter() {
                std::hint::black_box(sharded.search(q, K));
                sweep_searches += 1;
            }
        }
        let qps = sweep_searches as f64 / started.elapsed().as_secs_f64();
        eprintln!(
            "sweep @ {shards} shard(s): ingest {ingest_rate:8.1} docs/sec  \
             search {qps:8.1} q/s  publish mean {:.3} ms",
            publish_mean * 1e3
        );
        sweep_rows.push(obj([
            ("shards", (shards as i64).into()),
            ("ingest_docs_per_sec", ingest_rate.into()),
            ("search_qps", qps.into()),
            ("publish_mean_seconds", publish_mean.into()),
            ("publishes", (publish_delta_count as i64).into()),
        ]));
    }

    let report = obj([
        ("bench", "concurrent".into()),
        ("meta", create_bench::meta_json(n)),
        ("n_docs", (n as i64).into()),
        ("corpus_seed", 1234_i64.into()),
        ("k", (K as i64).into()),
        ("readers", (READERS as i64).into()),
        ("prefill_docs", (prefill as i64).into()),
        ("stream_docs", (stream.len() as i64).into()),
        ("stream_batch_size", (STREAM_BATCH as i64).into()),
        ("searches_total", (searches_total as i64).into()),
        (
            "searches_during_ingest",
            (searches_during_ingest as i64).into(),
        ),
        ("search_qps", search_qps.into()),
        ("read_p50_seconds", p50.into()),
        ("read_p99_seconds", p99.into()),
        ("min_batch_ingest_seconds", min_batch.into()),
        ("max_batch_ingest_seconds", max_batch.into()),
        (
            "publish_latency",
            obj([
                ("count", (publish_hist.count() as i64).into()),
                ("sum_seconds", publish_hist.sum().into()),
                ("p50_seconds", publish_hist.quantile(0.50).into()),
                ("p95_seconds", publish_hist.quantile(0.95).into()),
                ("p99_seconds", publish_hist.quantile(0.99).into()),
            ]),
        ),
        ("snapshot_publishes", (publishes as i64).into()),
        ("shard_sweep", Value::Array(sweep_rows)),
    ]);
    std::fs::write(&out_path, report.to_json_pretty()).expect("write bench report");
    eprintln!("wrote {out_path}");
}

/// Nearest-rank percentile over sorted latencies, in seconds.
fn percentile_secs(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_nanos.len() as f64).ceil() as usize).clamp(1, sorted_nanos.len());
    sorted_nanos[rank - 1] as f64 / 1e9
}
