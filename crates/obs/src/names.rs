//! Canonical metric and stage names, shared by the instrumented
//! crates, the `/metrics` endpoint, and the bench readouts so the
//! series line up everywhere.

/// Ingest pipeline stage latency, labelled `stage=...`.
pub const PIPELINE_STAGE_SECONDS: &str = "create_pipeline_stage_seconds";
/// `stage` values for [`PIPELINE_STAGE_SECONDS`], in pipeline order.
pub const PIPELINE_STAGES: [&str; 5] = [
    STAGE_SECTION_SPLIT,
    STAGE_NER,
    STAGE_TEMPORAL_RE,
    STAGE_GRAPH_BUILD,
    STAGE_INDEX_WRITE,
];
pub const STAGE_SECTION_SPLIT: &str = "section_split";
pub const STAGE_NER: &str = "ner";
pub const STAGE_TEMPORAL_RE: &str = "temporal_re";
pub const STAGE_GRAPH_BUILD: &str = "graph_build";
pub const STAGE_INDEX_WRITE: &str = "index_write";

/// End-to-end facade query latency (cache hits included).
pub const QUERY_SECONDS: &str = "create_query_seconds";
/// Query stage latency, labelled `stage=...`.
pub const QUERY_STAGE_SECONDS: &str = "create_query_stage_seconds";
/// `stage` values for [`QUERY_STAGE_SECONDS`], in execution order. The
/// last four are the cohort plan stages (filter pushdown, temporal
/// evaluation, facet counting run after the shared parse/search stages).
pub const QUERY_STAGES: [&str; 8] = [
    QSTAGE_PARSE,
    QSTAGE_PLAN,
    QSTAGE_GRAPH_SEARCH,
    QSTAGE_KEYWORD_SEARCH,
    QSTAGE_FILTER,
    QSTAGE_TEMPORAL,
    QSTAGE_FACET_COUNT,
    QSTAGE_MERGE,
];
pub const QSTAGE_PARSE: &str = "parse";
pub const QSTAGE_PLAN: &str = "plan";
pub const QSTAGE_GRAPH_SEARCH: &str = "graph_search";
pub const QSTAGE_KEYWORD_SEARCH: &str = "keyword_search";
pub const QSTAGE_FILTER: &str = "filter";
pub const QSTAGE_TEMPORAL: &str = "temporal";
pub const QSTAGE_FACET_COUNT: &str = "facet_count";
pub const QSTAGE_MERGE: &str = "merge";

/// DAAT executor counters (flushed once per `Index::search`).
pub const DAAT_POSTINGS_ADVANCED_TOTAL: &str = "create_daat_postings_advanced_total";
pub const DAAT_CANDIDATES_PRUNED_TOTAL: &str = "create_daat_candidates_pruned_total";
pub const DAAT_FUZZY_EXPANSIONS_TOTAL: &str = "create_daat_fuzzy_expansions_total";
pub const DAAT_HEAP_EVICTIONS_TOTAL: &str = "create_daat_heap_evictions_total";

/// Query-cache counters (mirror of the `/stats` fields).
pub const QUERY_CACHE_HITS_TOTAL: &str = "create_query_cache_hits_total";
pub const QUERY_CACHE_MISSES_TOTAL: &str = "create_query_cache_misses_total";

/// Graph executor counters (flushed once per graph query).
pub const GRAPH_EXEC_NODES_VISITED_TOTAL: &str = "create_graph_exec_nodes_visited_total";
pub const GRAPH_EXEC_EDGES_TRAVERSED_TOTAL: &str = "create_graph_exec_edges_traversed_total";

/// Per-merge-policy search counts, labelled `policy=...`.
pub const SEARCH_POLICY_TOTAL: &str = "create_search_policy_total";

/// Poisoned-lock recoveries (server keeps serving instead of crashing).
pub const LOCK_POISONED_TOTAL: &str = "create_lock_poisoned_total";

/// Snapshot publications (one per completed write batch) and the time
/// spent building + swapping in the new snapshot.
pub const SNAPSHOT_PUBLISH_TOTAL: &str = "create_snapshot_publish_total";
pub const SNAPSHOT_PUBLISH_SECONDS: &str = "create_snapshot_publish_seconds";

/// Stored documents whose fields failed to parse on `Create::open` and
/// fell back to a default (e.g. a missing or non-integer `year`).
pub const OPEN_MALFORMED_FIELDS_TOTAL: &str = "create_open_malformed_fields_total";

/// Config values rejected or clamped at `Create::open`/`Create::new`
/// (e.g. a zero or absurd shard count).
pub const OPEN_BAD_CONFIG_TOTAL: &str = "create_open_bad_config_total";

/// Per-shard write-path series, labelled `shard=...`: the shard's
/// current generation stamp, its completed publishes, and its query
/// cache partition's entry count (gauges refreshed at scrape time).
pub const SHARD_GENERATION_GAUGE: &str = "create_shard_generation";
pub const SHARD_PUBLISH_TOTAL: &str = "create_shard_publish_total";
pub const SHARD_CACHE_ENTRIES_GAUGE: &str = "create_shard_cache_entries";

/// HTTP layer, labelled `route=...` (+ `status=...` on the counter).
pub const HTTP_REQUESTS_TOTAL: &str = "create_http_requests_total";
pub const HTTP_REQUEST_SECONDS: &str = "create_http_request_seconds";

/// Evented-server connection lifecycle: currently open sockets (gauge,
/// maintained by the event loop) and total accepted connections.
pub const HTTP_CONNECTIONS_OPEN_GAUGE: &str = "create_http_connections_open";
pub const HTTP_CONNECTIONS_ACCEPTED_TOTAL: &str = "create_http_connections_accepted_total";
/// Admission-control rejections, labelled `reason=` (`connection_ceiling`,
/// `route_limit`, `draining`) and, for route limits, `route=`.
pub const HTTP_SHED_TOTAL: &str = "create_http_shed_total";
/// Time a parsed request waited between admission and a dispatch worker
/// picking it up, labelled `route=`.
pub const HTTP_QUEUE_WAIT_SECONDS: &str = "create_http_queue_wait_seconds";
/// Requests rejected with 413 because `Content-Length` exceeded the
/// configured body cap.
pub const HTTP_BODY_REJECTED_TOTAL: &str = "create_http_body_rejected_total";
/// Requests rejected with 400 for malformed request lines or invalid /
/// oversized headers.
pub const HTTP_PARSE_ERROR_TOTAL: &str = "create_http_parse_error_total";
/// Connections reaped by a deadline, labelled `kind=` (`header`, `body`,
/// `idle`, `write`).
pub const HTTP_TIMEOUTS_TOTAL: &str = "create_http_timeouts_total";
/// Second-and-later requests served on a kept-alive connection.
pub const HTTP_KEEPALIVE_REUSE_TOTAL: &str = "create_http_keepalive_reuse_total";

/// Work-stealing pool series, maintained by `create-util::pool`:
/// live worker threads across all pools, jobs currently queued but not
/// yet picked up, and jobs handed to an executor since process start.
pub const POOL_WORKERS_GAUGE: &str = "create_pool_workers";
pub const POOL_QUEUE_DEPTH_GAUGE: &str = "create_pool_queue_depth";
pub const POOL_JOBS_EXECUTED_TOTAL: &str = "create_pool_jobs_executed_total";

/// Flight-recorder accounting: completed request traces persisted into
/// the recorder rings, and requests whose trace was head-sampled out.
pub const TRACES_RECORDED_TOTAL: &str = "create_traces_recorded_total";
pub const TRACES_SAMPLED_OUT_TOTAL: &str = "create_traces_sampled_out_total";

/// Span-tree node names for the structural (non-stage) spans: the
/// per-query span under a request root, and the per-shard children of
/// the keyword/graph scatter stages. Stage spans reuse the `stage=`
/// label values above.
pub const SPAN_SEARCH: &str = "search";
pub const SPAN_KEYWORD_SHARD: &str = "keyword_shard";
pub const SPAN_GRAPH_SHARD: &str = "graph_shard";
/// The per-request cohort-retrieval span (the `/cohort` analogue of
/// [`SPAN_SEARCH`]) and its per-shard scatter children.
pub const SPAN_COHORT: &str = "cohort";
pub const SPAN_COHORT_SHARD: &str = "cohort_shard";

/// Query-plan executor counters: logical plan nodes executed (every node
/// of every optimized plan, keyword and cohort alike) and sorted-run
/// bitmap intersections performed by the facet-filter pushdown.
pub const PLAN_NODES_TOTAL: &str = "create_plan_nodes_total";
pub const BITMAP_INTERSECTIONS_TOTAL: &str = "create_bitmap_intersections_total";

/// Log events by severity, labelled `level=...`.
pub const LOG_EVENTS_TOTAL: &str = "create_log_events_total";

/// Durable storage engine series. The WAL counter totals framed bytes
/// appended across shards; the segment gauges reflect the live manifest
/// (refreshed at scrape and after every flush/compaction); compaction
/// counters total merge runs and the documents they rewrote; the
/// recovery counter totals WAL records replayed by `Create::open`.
pub const WAL_APPENDED_BYTES_TOTAL: &str = "create_wal_appended_bytes_total";
pub const WAL_APPEND_SECONDS: &str = "create_wal_append_seconds";
pub const SEGMENT_COUNT_GAUGE: &str = "create_segment_count";
pub const SEGMENT_BYTES_GAUGE: &str = "create_segment_bytes";
pub const SEGMENT_SEAL_SECONDS: &str = "create_segment_seal_seconds";
pub const COMPACTION_RUNS_TOTAL: &str = "create_compaction_runs_total";
pub const COMPACTION_MERGED_DOCS_TOTAL: &str = "create_compaction_merged_docs_total";
pub const RECOVERY_REPLAYED_RECORDS_TOTAL: &str = "create_recovery_replayed_records_total";

/// Corpus/system size gauges, refreshed at `/metrics` scrape time.
pub const REPORTS_GAUGE: &str = "create_reports";
pub const GRAPH_NODES_GAUGE: &str = "create_graph_nodes";
pub const GRAPH_EDGES_GAUGE: &str = "create_graph_edges";
pub const INDEX_TERMS_GAUGE: &str = "create_index_terms";
pub const QUERY_CACHE_ENTRIES_GAUGE: &str = "create_query_cache_entries";
pub const INDEX_GENERATION_GAUGE: &str = "create_index_generation";
