//! Global metrics registry: atomic counters, gauges, and fixed-bucket
//! latency histograms with quantile extraction, rendered in the
//! Prometheus text exposition format.
//!
//! Handles are `Arc`s interned by `(name, sorted labels)`; call sites
//! fetch a handle once (the lookup takes a mutex) and then record
//! through lock-free atomics. The registry itself is always live —
//! the `enabled` feature only gates the recording shims in the rest
//! of the crate, so a build without instrumentation still renders an
//! (empty) exposition page.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds in seconds: 10µs → 10s in a
/// 1/2.5/5 decade ladder, plus the implicit `+Inf` overflow bucket.
pub const LATENCY_BUCKETS: [f64; 19] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A histogram exemplar: the trace that produced an observation, so a
/// latency bucket links back to a recorded span tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exemplar {
    /// Raw trace ID (rendered as 16 hex chars in the exposition).
    pub trace_id: u64,
    /// The observed value.
    pub value: f64,
}

/// Per-bucket exemplars: the most recent traced observation (rendered
/// on `/metrics` — fresh traces are the ones still in the flight
/// recorder) and the largest seen (kept for diagnostics/tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct BucketExemplars {
    /// Most recent traced observation landing in this bucket.
    pub recent: Option<Exemplar>,
    /// Largest traced observation landing in this bucket.
    pub max: Option<Exemplar>,
}

/// Fixed-bucket histogram with atomic bucket counts.
///
/// Bucket edges are `le`-inclusive, matching Prometheus: a value equal
/// to a bound lands in that bound's bucket. Quantiles come from the
/// nearest-rank over the cumulative bucket counts and report the
/// upper bound of the bucket holding that rank (`+Inf` bucket reports
/// the largest finite bound — the histogram's saturation point).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1; last is the +Inf bucket
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 bit pattern, CAS-accumulated
    // Lazily sized to buckets.len() on the first traced observation;
    // untraced histograms never touch (or allocate) this.
    exemplars: Mutex<Vec<BucketExemplars>>,
}

impl Histogram {
    /// Builds a histogram over ascending finite upper bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// Histogram over the default latency ladder.
    pub fn latency() -> Histogram {
        Histogram::new(&LATENCY_BUCKETS)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // First bound >= v; values above every bound hit the +Inf slot.
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one observation and, when a trace ID is supplied,
    /// remembers it as the landing bucket's exemplar.
    pub fn observe_traced(&self, v: f64, trace_id: Option<u64>) {
        self.observe(v);
        let Some(trace_id) = trace_id else {
            return;
        };
        let idx = self.bounds.partition_point(|b| *b < v);
        let mut exemplars = self.exemplars.lock().unwrap_or_else(|p| p.into_inner());
        if exemplars.len() < self.buckets.len() {
            exemplars.resize(self.buckets.len(), BucketExemplars::default());
        }
        let slot = &mut exemplars[idx];
        slot.recent = Some(Exemplar { trace_id, value: v });
        if slot.max.map_or(true, |m| v >= m.value) {
            slot.max = Some(Exemplar { trace_id, value: v });
        }
    }

    /// Per-bucket exemplars, index-aligned with the bucket list
    /// (`bounds` then `+Inf`). Buckets with no traced observation
    /// report empty slots.
    pub fn bucket_exemplars(&self) -> Vec<BucketExemplars> {
        let mut out = self
            .exemplars
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        out.resize(self.buckets.len(), BucketExemplars::default());
        out
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile (`0.0 < q <= 1.0`), reported as the upper
    /// bound of the bucket containing that rank. Returns 0.0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: saturate at the largest bound.
                    *self.bounds.last().expect("non-empty bounds")
                };
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Cumulative per-bucket counts paired with their upper bounds
    /// (`None` = `+Inf`), for rendering.
    fn cumulative_buckets(&self) -> Vec<(Option<f64>, u64)> {
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), cumulative));
        }
        out
    }
}

type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

/// Interning registry for all metric kinds. `Registry::global()` is
/// the process-wide instance the convenience functions in the crate
/// root use; tests can build private registries for deterministic
/// assertions.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry (for tests; production code uses `global`).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Counter handle for `name` with no labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Counter handle for `name` + labels, interning on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(key(name, labels)).or_default())
    }

    /// Gauge handle for `name` with no labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gauge handle for `name` + labels, interning on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(key(name, labels)).or_default())
    }

    /// Latency histogram handle for `name` with no labels.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Latency histogram handle for `name` + labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            map.entry(key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::latency())),
        )
    }

    /// Renders every registered metric in the Prometheus text
    /// exposition format (sorted by name, then label set).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let counters = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        let mut last_name = None::<&str>;
        for ((name, labels), counter) in counters.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name = Some(name.as_str());
            }
            let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), counter.get());
        }
        drop(counters);

        let gauges = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        let mut last_name = None::<&str>;
        for ((name, labels), gauge) in gauges.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_name = Some(name.as_str());
            }
            let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), gauge.get());
        }
        drop(gauges);

        let histograms = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        let mut last_name = None::<&str>;
        for ((name, labels), histogram) in histograms.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = Some(name.as_str());
            }
            let exemplars = histogram.bucket_exemplars();
            for (i, (bound, cumulative)) in histogram.cumulative_buckets().into_iter().enumerate()
            {
                let le = match bound {
                    Some(b) => format_bound(b),
                    None => "+Inf".to_string(),
                };
                let _ = write!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    render_labels(labels, Some(&le))
                );
                // OpenMetrics exemplar syntax: the per-bucket trace that
                // most recently landed here (fresh traces are the ones
                // still in the flight recorder).
                if let Some(e) = exemplars[i].recent {
                    let _ = write!(out, " # {{trace_id=\"{:016x}\"}} {}", e.trace_id, e.value);
                }
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                render_labels(labels, None),
                histogram.sum()
            );
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                render_labels(labels, None),
                histogram.count()
            );
        }
        out
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats a bucket bound the way Prometheus clients expect
/// (decimal, no exponent, no trailing zeros).
fn format_bound(b: f64) -> String {
    if b == b.trunc() && b.abs() < 1e15 {
        return format!("{}", b as i64);
    }
    let mut s = format!("{b:.9}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        c.inc();
        c.inc_by(41);
        c.inc_by(0);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucket_edges_are_le_inclusive() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        // Exactly on an edge lands in that edge's bucket.
        h.observe(1.0);
        h.observe(2.0);
        h.observe(5.0);
        // Strictly above the last bound overflows to +Inf.
        h.observe(5.000001);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (Some(1.0), 1));
        assert_eq!(buckets[1], (Some(2.0), 2));
        assert_eq!(buckets[2], (Some(5.0), 3));
        assert_eq!(buckets[3], (None, 4));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_below_first_bound_lands_in_first_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.0);
        h.observe(0.5);
        assert_eq!(h.cumulative_buckets()[0], (Some(1.0), 2));
    }

    #[test]
    fn quantiles_of_known_distribution() {
        // 100 observations: 90 in (0,1], 9 in (1,2], 1 in (2,5].
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..9 {
            h.observe(1.5);
        }
        h.observe(3.0);
        assert_eq!(h.quantile(0.50), 1.0); // rank 50 of 100 → first bucket
        assert_eq!(h.quantile(0.90), 1.0); // rank 90 is the last of the 90
        assert_eq!(h.quantile(0.95), 2.0); // rank 95 → second bucket
        assert_eq!(h.quantile(0.99), 2.0); // rank 99 is the last of the 9
        assert_eq!(h.quantile(1.0), 5.0); // rank 100 → third bucket
    }

    #[test]
    fn quantile_saturates_at_largest_bound_for_overflow() {
        let h = Histogram::new(&[1.0]);
        h.observe(100.0);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::latency();
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_sum_accumulates() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.25);
        h.observe(0.75);
        assert!((h.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn registry_interns_handles() {
        let r = Registry::new();
        let a = r.counter_with("hits", &[("route", "/x")]);
        let b = r.counter_with("hits", &[("route", "/x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        // Different labels are distinct series.
        let c = r.counter_with("hits", &[("route", "/y")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn prometheus_render_shape() {
        let r = Registry::new();
        r.counter_with("req_total", &[("route", "/a")]).inc_by(3);
        r.counter_with("req_total", &[("route", "/b")]).inc();
        r.gauge("docs").set(7);
        r.histogram("lat_seconds").observe(0.003);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{route=\"/a\"} 3\n"));
        assert!(text.contains("req_total{route=\"/b\"} 1\n"));
        assert!(text.contains("# TYPE docs gauge\ndocs 7\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.00001\"} 0\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.005\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_seconds_count 1\n"));
        assert!(text.ends_with('\n'));
        // TYPE line appears once per metric name, not per series.
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        let r = Registry::new();
        r.counter_with("odd", &[("q", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"odd{q="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn exemplars_track_recent_and_max_per_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe_traced(0.5, Some(0xaa));
        h.observe_traced(0.9, Some(0xbb));
        h.observe_traced(0.1, Some(0xcc));
        h.observe_traced(10.0, None); // untraced: counted, no exemplar
        let ex = h.bucket_exemplars();
        assert_eq!(ex.len(), 3, "aligned with bounds + the +Inf bucket");
        assert_eq!(ex[0].recent, Some(Exemplar { trace_id: 0xcc, value: 0.1 }));
        assert_eq!(ex[0].max, Some(Exemplar { trace_id: 0xbb, value: 0.9 }));
        assert_eq!(ex[1].recent, None);
        assert_eq!(ex[2].recent, None, "untraced observation leaves no exemplar");
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn render_appends_exemplars_to_bucket_lines() {
        let r = Registry::new();
        let h = r.histogram("ex_seconds");
        h.observe_traced(0.003, Some(0xdead_beef));
        h.observe(0.004); // untraced observation in the same bucket
        let text = r.render_prometheus();
        assert!(
            text.contains("ex_seconds_bucket{le=\"0.005\"} 2 # {trace_id=\"00000000deadbeef\"} 0.003\n"),
            "bucket line carries the exemplar: {text}"
        );
        assert!(
            text.contains("ex_seconds_bucket{le=\"0.00001\"} 0\n"),
            "buckets without exemplars render bare: {text}"
        );
        // Every bucket line still ends in a parseable f64 (scrape
        // compatibility for the pre-exemplar assertions).
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let last = line.rsplit(' ').next().unwrap();
            assert!(last.parse::<f64>().is_ok(), "unparseable tail in {line}");
        }
    }

    #[test]
    fn bound_formatting_is_decimal() {
        assert_eq!(format_bound(1e-5), "0.00001");
        assert_eq!(format_bound(2.5e-5), "0.000025");
        assert_eq!(format_bound(0.25), "0.25");
        assert_eq!(format_bound(1.0), "1");
        assert_eq!(format_bound(10.0), "10");
    }
}
