//! Std-only observability layer for the CREATe workspace.
//!
//! Three pieces, all dependency-free:
//!
//! - **Metrics registry** ([`metrics`]): atomic counters, gauges, and
//!   fixed-bucket latency histograms with p50/p95/p99 extraction,
//!   rendered in the Prometheus text exposition format.
//! - **Spans and traces** ([`trace`]): `Span::enter(metric, stage)`
//!   RAII guards that record wall time into stage histograms, a
//!   thread-local per-request trace ID, and a per-query capture frame.
//! - **Event + slow-query logs** ([`events`], [`slowlog`]): a
//!   severity-filtered ring buffer of events, and a ring of queries
//!   that crossed a configurable latency threshold, captured with
//!   their trace ID, per-stage timings, and DAAT stats.
//!
//! The `enabled` feature (default on) compiles the recording paths
//! in. Downstream crates forward it through their own `obs` feature,
//! so `--no-default-features` builds measure the uninstrumented
//! system — `scripts/verify.sh` gates instrumentation overhead that
//! way. The registry itself stays live either way so `/metrics`
//! always renders.

pub mod events;
pub mod metrics;
pub mod names;
pub mod slowlog;
pub mod trace;

pub use events::{log, log_level, recent_events, set_log_level, Event, Level};
pub use metrics::{escape_label_value, Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS};
pub use slowlog::{
    clear_slow_queries, set_slow_query_threshold, slow_queries, slow_query_threshold,
    SlowQueryRecord,
};
pub use trace::{
    buffered_stages, current_trace_id, flush_stages, next_trace_id, observe_stage, record_daat,
    record_graph_exec, set_current_trace, DaatStats, QueryCapture, Span, StageLog, TraceGuard,
};

use std::sync::Arc;

/// Whether the recording paths are compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Global counter handle (see [`Registry::counter`]).
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// Global labelled counter handle.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    Registry::global().counter_with(name, labels)
}

/// Global gauge handle.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// Global labelled gauge handle.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    Registry::global().gauge_with(name, labels)
}

/// Global latency histogram handle.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// Global labelled latency histogram handle.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    Registry::global().histogram_with(name, labels)
}

/// Renders the global registry in Prometheus text format.
pub fn render_prometheus() -> String {
    Registry::global().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_flag_is_visible() {
        // The crate's own test build uses default features.
        assert!(enabled());
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        // Hammer one counter from the create-util work-stealing pool:
        // every increment must land (satellite requirement).
        let registry = Registry::new();
        let counter = registry.counter("concurrent_total");
        let pool = create_util::ThreadPool::new(4);
        const TASKS: usize = 64;
        const PER_TASK: u64 = 1_000;
        let items: Vec<usize> = (0..TASKS).collect();
        let results = pool.parallel_map(&items, |_, _| {
            for _ in 0..PER_TASK {
                counter.inc();
            }
            1u64
        });
        assert_eq!(results.len(), TASKS);
        assert_eq!(counter.get(), TASKS as u64 * PER_TASK);
    }

    #[test]
    fn concurrent_histogram_observations_sum_exactly() {
        let registry = Registry::new();
        let hist = registry.histogram("concurrent_seconds");
        let pool = create_util::ThreadPool::new(4);
        const TASKS: usize = 32;
        const PER_TASK: usize = 500;
        let items: Vec<usize> = (0..TASKS).collect();
        pool.parallel_map(&items, |_, _| {
            for _ in 0..PER_TASK {
                hist.observe(0.001);
            }
        });
        assert_eq!(hist.count(), (TASKS * PER_TASK) as u64);
        let expected = 0.001 * (TASKS * PER_TASK) as f64;
        assert!((hist.sum() - expected).abs() < 1e-6, "sum {}", hist.sum());
    }
}
