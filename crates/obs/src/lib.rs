//! Std-only observability layer for the CREATe workspace.
//!
//! Three pieces, all dependency-free:
//!
//! - **Metrics registry** ([`metrics`]): atomic counters, gauges, and
//!   fixed-bucket latency histograms with p50/p95/p99 extraction,
//!   rendered in the Prometheus text exposition format.
//! - **Spans and traces** ([`trace`]): a propagated per-request
//!   [`TraceContext`] (captured by `create-util::pool` when jobs are
//!   injected, re-installed on the worker), `Span::enter(metric,
//!   stage)` RAII guards that record wall time into stage histograms
//!   *and* the request's span tree, histogram exemplars linking
//!   latency buckets to trace IDs, and a per-query capture frame.
//! - **Flight recorder** ([`recorder`]): completed span trees in two
//!   fixed-size rings (general + always-retained slow), head-sampled
//!   at a runtime-configurable rate, served as `GET /trace/{id}` and
//!   `GET /debug/traces`.
//! - **Event + slow-query logs** ([`events`], [`slowlog`]): a
//!   severity-filtered ring buffer of events, and a ring of queries
//!   that crossed a configurable latency threshold, captured with
//!   their trace ID, per-stage timings, and DAAT stats.
//!
//! The `enabled` feature (default on) compiles the recording paths
//! in. Downstream crates forward it through their own `obs` feature,
//! so `--no-default-features` builds measure the uninstrumented
//! system — `scripts/verify.sh` gates instrumentation overhead that
//! way. The registry itself stays live either way so `/metrics`
//! always renders.

pub mod events;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod slowlog;
pub mod trace;

pub use events::{log, log_level, recent_events, set_log_level, Event, Level};
pub use metrics::{
    escape_label_value, BucketExemplars, Counter, Exemplar, Gauge, Histogram, Registry,
    LATENCY_BUCKETS,
};
pub use recorder::{
    clear_recorded_traces, find_trace, set_trace_sample_rate, trace_sample_rate, trace_summaries,
    SpanRecord, TraceRecord, TraceSummary, RECORDER_CAPACITY, RECORDER_SLOW_CAPACITY,
};
pub use slowlog::{
    clear_slow_queries, set_slow_query_threshold, slow_queries, slow_query_threshold,
    SlowQueryRecord,
};
pub use trace::{
    add_span_counter, buffered_stages, carry_context, child_span, current_context,
    current_trace_id, current_trace_raw, flush_stages, install_context, next_trace_id,
    observe_stage, parse_trace_hex, record_daat, record_graph_exec, shard_span, ContextGuard,
    DaatStats, QueryCapture, RequestTrace, Span, StageLog, TraceContext, TreeSpan,
};

use std::sync::Arc;

/// Whether the recording paths are compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Global counter handle (see [`Registry::counter`]).
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// Global labelled counter handle.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    Registry::global().counter_with(name, labels)
}

/// Global gauge handle.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// Global labelled gauge handle.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    Registry::global().gauge_with(name, labels)
}

/// Global latency histogram handle.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// Global labelled latency histogram handle.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    Registry::global().histogram_with(name, labels)
}

/// Renders the global registry in Prometheus text format.
pub fn render_prometheus() -> String {
    Registry::global().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_flag_is_visible() {
        // The crate's own test build uses default features.
        assert!(enabled());
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        // Hammer one counter from the create-util work-stealing pool:
        // every increment must land (satellite requirement).
        let registry = Registry::new();
        let counter = registry.counter("concurrent_total");
        let pool = create_util::ThreadPool::new(4);
        const TASKS: usize = 64;
        const PER_TASK: u64 = 1_000;
        let items: Vec<usize> = (0..TASKS).collect();
        let results = pool.parallel_map(&items, |_, _| {
            for _ in 0..PER_TASK {
                counter.inc();
            }
            1u64
        });
        assert_eq!(results.len(), TASKS);
        assert_eq!(counter.get(), TASKS as u64 * PER_TASK);
    }

    #[test]
    fn concurrent_histogram_observations_sum_exactly() {
        let registry = Registry::new();
        let hist = registry.histogram("concurrent_seconds");
        let pool = create_util::ThreadPool::new(4);
        const TASKS: usize = 32;
        const PER_TASK: usize = 500;
        let items: Vec<usize> = (0..TASKS).collect();
        pool.parallel_map(&items, |_, _| {
            for _ in 0..PER_TASK {
                hist.observe(0.001);
            }
        });
        assert_eq!(hist.count(), (TASKS * PER_TASK) as u64);
        let expected = 0.001 * (TASKS * PER_TASK) as f64;
        assert!((hist.sum() - expected).abs() < 1e-6, "sum {}", hist.sum());
    }
}
