//! Span/tracing layer: propagated per-request trace contexts, RAII
//! stage spans feeding both histograms and recorded span trees, and
//! the per-query capture frame the slow-query log reads from.
//!
//! Trace IDs are process-unique 64-bit splitmix64 outputs rendered as
//! 16 hex chars. The *current* context is a cheaply clonable
//! [`TraceContext`] (trace ID + current span ID + shared span sink)
//! held in a thread-local: the server's router installs one per
//! request via [`RequestTrace::begin`], and [`carry_context`] captures
//! it when a job is handed to `create-util::pool` so the worker
//! re-installs it — shard fan-out and pooled batch searches land their
//! spans and slowlog trace IDs in the dispatching request's tree.
//!
//! Sampled requests (see [`crate::recorder`]) additionally carry a
//! [`SpanSink`]; [`child_span`]/[`shard_span`]/[`Span`] append to it
//! and the completed tree is persisted in the flight recorder when the
//! [`RequestTrace`] drops.

use crate::metrics::Registry;
use crate::names;
use crate::recorder::{SpanSink, TraceRecord};
use crate::Histogram;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn trace_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        splitmix64(nanos ^ u64::from(std::process::id()))
    })
}

/// Generates a fresh nonzero raw trace ID.
fn next_trace_raw() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(trace_seed().wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Generates a fresh 16-hex-char trace ID.
pub fn next_trace_id() -> String {
    format!("{:016x}", next_trace_raw())
}

/// Parses a client-supplied trace ID (`X-Trace-Id` header): 1–16 hex
/// chars, nonzero. Anything else is rejected and a fresh ID is used.
pub fn parse_trace_hex(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(v) => Some(v),
    }
}

/// The propagated request context: which trace this thread is working
/// for, which span encloses the work, and (when the request was
/// sampled) the shared sink collecting the span tree. Cloning is two
/// u64 copies plus an `Arc` bump.
#[derive(Clone, Debug)]
pub struct TraceContext {
    /// Raw 64-bit trace ID (rendered as 16 hex chars externally).
    pub trace_id: u64,
    /// Id of the span enclosing the current work (root = 1).
    pub span_id: u64,
    /// Span collector, present only on sampled requests.
    pub sink: Option<Arc<SpanSink>>,
}

impl TraceContext {
    /// The trace ID as its 16-hex-char wire form.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
    static CAPTURE: RefCell<Option<CaptureFrame>> = const { RefCell::new(None) };
    static STAGE_BUFFER: RefCell<Option<Vec<(&'static str, &'static str, f64)>>> =
        const { RefCell::new(None) };
}

/// This thread's current trace context, if one is installed.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The raw trace ID installed on this thread, if any.
pub fn current_trace_raw() -> Option<u64> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.trace_id))
}

/// The trace ID installed on this thread, as 16 hex chars.
pub fn current_trace_id() -> Option<String> {
    CURRENT.with(|c| c.borrow().as_ref().map(TraceContext::trace_hex))
}

/// RAII guard restoring the previous thread-local context on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ContextGuard {
    // None = inactive guard (nothing was installed).
    prev: Option<Option<TraceContext>>,
}

impl ContextGuard {
    fn inactive() -> ContextGuard {
        ContextGuard { prev: None }
    }
}

/// Installs `ctx` as the current thread's trace context for the
/// guard's lifetime (pass `None` to run context-free).
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx));
    ContextGuard { prev: Some(prev) }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Wraps a job so it runs under the submitting thread's trace context.
/// `create-util::pool` applies this to every injected job, which is
/// what lets shard fan-out and pooled batch searches attribute their
/// spans (and slowlog records) to the request that spawned them. In
/// stripped builds this is the identity.
pub fn carry_context<R, F>(f: F) -> impl FnOnce() -> R + Send + 'static
where
    F: FnOnce() -> R + Send + 'static,
    R: 'static,
{
    let ctx = if crate::enabled() { current_context() } else { None };
    move || {
        if crate::enabled() {
            let _guard = install_context(ctx);
            f()
        } else {
            f()
        }
    }
}

/// One request's trace: owns the trace ID echoed as `X-Trace-Id`,
/// keeps the context installed on the dispatching thread, and — when
/// the request is sampled — persists the collected span tree into the
/// flight recorder on drop.
pub struct RequestTrace {
    hex: String,
    root: String,
    start: Instant,
    sink: Option<Arc<SpanSink>>,
    _guard: ContextGuard,
}

impl RequestTrace {
    /// Starts a request trace, honoring a valid inbound `X-Trace-Id`
    /// value (1–16 hex chars, nonzero) or minting a fresh ID. The
    /// head-sampling decision (see [`crate::recorder::sample`]) picks
    /// whether a span sink is attached; unsampled requests still carry
    /// the context so trace IDs reach the slowlog and exemplars.
    pub fn begin(inbound: Option<&str>) -> RequestTrace {
        let trace_id = inbound
            .and_then(parse_trace_hex)
            .unwrap_or_else(next_trace_raw);
        let (sink, guard) = if crate::enabled() {
            let sink = if crate::recorder::sample(trace_id) {
                Some(Arc::new(SpanSink::new()))
            } else {
                crate::counter(names::TRACES_SAMPLED_OUT_TOTAL).inc();
                None
            };
            let guard = install_context(Some(TraceContext {
                trace_id,
                span_id: 1,
                sink: sink.clone(),
            }));
            (sink, guard)
        } else {
            (None, ContextGuard::inactive())
        };
        RequestTrace {
            hex: format!("{trace_id:016x}"),
            root: String::new(),
            start: Instant::now(),
            sink,
            _guard: guard,
        }
    }

    /// The 16-hex-char trace ID (the `X-Trace-Id` response value).
    pub fn hex(&self) -> &str {
        &self.hex
    }

    /// Names the root span — the router sets this to the matched route
    /// pattern once dispatch resolves it.
    pub fn set_root(&mut self, name: &str) {
        self.root.clear();
        self.root.push_str(name);
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        let Some(sink) = self.sink.take() else {
            return;
        };
        let total = self.start.elapsed();
        let spans = sink.finish_root(&self.root, total.as_secs_f64());
        crate::recorder::record(TraceRecord {
            trace_id: std::mem::take(&mut self.hex),
            root: std::mem::take(&mut self.root),
            total_seconds: total.as_secs_f64(),
            slow: total >= crate::slowlog::slow_query_threshold(),
            spans,
        });
    }
}

struct TreeSpanInner {
    sink: Arc<SpanSink>,
    id: u64,
    start: Instant,
    prev: Option<TraceContext>,
}

/// RAII structural span: a node in the recorded span tree with no
/// histogram attached (per-query and per-shard spans). While held, the
/// thread's context points at this span, so nested spans and
/// [`add_span_counter`] attach beneath it. No-op when the request is
/// unsampled or tracing is compiled out.
#[must_use = "a tree span closes on drop; binding it to _ drops it immediately"]
pub struct TreeSpan {
    inner: Option<TreeSpanInner>,
}

fn open_tree_span(name: &str, shard: Option<u32>) -> TreeSpan {
    if !crate::enabled() {
        return TreeSpan { inner: None };
    }
    let Some(ctx) = current_context() else {
        return TreeSpan { inner: None };
    };
    let Some(sink) = ctx.sink.clone() else {
        return TreeSpan { inner: None };
    };
    let id = sink.open_span(ctx.span_id, name, shard);
    let prev = CURRENT.with(|c| {
        c.borrow_mut().replace(TraceContext {
            span_id: id,
            ..ctx
        })
    });
    TreeSpan {
        inner: Some(TreeSpanInner {
            sink,
            id,
            start: Instant::now(),
            prev,
        }),
    }
}

/// Opens a named child span under the current one.
pub fn child_span(name: &str) -> TreeSpan {
    open_tree_span(name, None)
}

/// Opens a per-shard child span (scatter-gather fan-out).
pub fn shard_span(name: &str, shard: u32) -> TreeSpan {
    open_tree_span(name, Some(shard))
}

impl Drop for TreeSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .sink
                .close_span(inner.id, inner.start.elapsed().as_secs_f64());
            CURRENT.with(|c| *c.borrow_mut() = inner.prev);
        }
    }
}

/// The current span's sink and id in one thread-local read — the
/// multi-counter flushes below pay for the lookup once, not per
/// counter (the TLS access dominates on uncontexted bench threads).
fn current_sink() -> Option<(Arc<SpanSink>, u64)> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(|ctx| ctx.sink.as_ref().map(|sink| (Arc::clone(sink), ctx.span_id)))
    })
}

/// Accumulates a named counter (postings advanced, cache hit, …) onto
/// the span currently enclosing this thread's work.
pub fn add_span_counter(name: &str, value: u64) {
    if !crate::enabled() || value == 0 {
        return;
    }
    if let Some((sink, span)) = current_sink() {
        sink.add_counter(span, name, value);
    }
}

/// Stage observations diverted from the registry by [`buffered_stages`],
/// waiting to be flushed on another thread via [`flush_stages`].
#[derive(Debug, Default)]
pub struct StageLog(Vec<(&'static str, &'static str, f64)>);

impl StageLog {
    /// Number of buffered observations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the log holds no observations.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Folds another log's observations onto the end of this one.
    pub fn merge(&mut self, other: StageLog) {
        self.0.extend(other.0);
    }
}

/// Runs `f` with this thread's stage observations diverted into a
/// [`StageLog`] instead of the global registry.
///
/// Pool workers use this so their span timings survive the hop back to
/// the dispatching thread: `observe_stage` (and thus every [`Span`])
/// inside `f` appends to the log, and the caller later applies the
/// batch and calls [`flush_stages`] to land the timings in the registry
/// (and the active capture frame) exactly once. Nesting restores the
/// previous buffer on exit.
pub fn buffered_stages<T>(f: impl FnOnce() -> T) -> (T, StageLog) {
    if !crate::enabled() {
        return (f(), StageLog::default());
    }
    let prev = STAGE_BUFFER.with(|b| b.borrow_mut().replace(Vec::new()));
    let out = f();
    let buffered = STAGE_BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        let buffered = slot.take().unwrap_or_default();
        *slot = prev;
        buffered
    });
    (out, StageLog(buffered))
}

/// Lands a [`StageLog`]'s observations in the global registry and the
/// calling thread's active capture frame.
pub fn flush_stages(log: StageLog) {
    if !crate::enabled() {
        return;
    }
    for (metric, stage, seconds) in log.0 {
        observe_stage(metric, stage, seconds);
    }
}

/// DAAT executor statistics for one query, batched into the registry
/// (and the active capture frame) in a single flush per search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaatStats {
    /// Postings positions cursors moved past (advance + seek deltas).
    pub postings_advanced: u64,
    /// Candidates discarded by the MaxScore upper-bound test.
    pub candidates_pruned: u64,
    /// Dictionary terms produced by fuzzy expansion.
    pub fuzzy_expansions: u64,
    /// Top-k heap evictions (pops past capacity).
    pub heap_evictions: u64,
}

impl DaatStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &DaatStats) {
        self.postings_advanced += other.postings_advanced;
        self.candidates_pruned += other.candidates_pruned;
        self.fuzzy_expansions += other.fuzzy_expansions;
        self.heap_evictions += other.heap_evictions;
    }
}

#[derive(Debug, Default)]
struct CaptureFrame {
    stages: Vec<(&'static str, f64)>,
    daat: DaatStats,
}

/// Flushes one query's DAAT stats into the global counters, the active
/// capture frame, and the current span's counters. Call once per
/// `Index::search`.
pub fn record_daat(stats: DaatStats) {
    if !crate::enabled() || stats == DaatStats::default() {
        return;
    }
    static COUNTERS: OnceLock<[Arc<crate::Counter>; 4]> = OnceLock::new();
    let [advanced, pruned, fuzzy, evicted] = COUNTERS.get_or_init(|| {
        let r = Registry::global();
        [
            r.counter(names::DAAT_POSTINGS_ADVANCED_TOTAL),
            r.counter(names::DAAT_CANDIDATES_PRUNED_TOTAL),
            r.counter(names::DAAT_FUZZY_EXPANSIONS_TOTAL),
            r.counter(names::DAAT_HEAP_EVICTIONS_TOTAL),
        ]
    });
    advanced.inc_by(stats.postings_advanced);
    pruned.inc_by(stats.candidates_pruned);
    fuzzy.inc_by(stats.fuzzy_expansions);
    evicted.inc_by(stats.heap_evictions);
    if let Some((sink, span)) = current_sink() {
        for (name, value) in [
            ("postings_advanced", stats.postings_advanced),
            ("candidates_pruned", stats.candidates_pruned),
            ("fuzzy_expansions", stats.fuzzy_expansions),
            ("heap_evictions", stats.heap_evictions),
        ] {
            if value != 0 {
                sink.add_counter(span, name, value);
            }
        }
    }
    CAPTURE.with(|c| {
        if let Some(frame) = c.borrow_mut().as_mut() {
            frame.daat.merge(&stats);
        }
    });
}

/// Flushes one graph query's traversal counts into the registry and
/// the current span's counters.
pub fn record_graph_exec(nodes_visited: u64, edges_traversed: u64) {
    if !crate::enabled() || (nodes_visited == 0 && edges_traversed == 0) {
        return;
    }
    static COUNTERS: OnceLock<[Arc<crate::Counter>; 2]> = OnceLock::new();
    let [nodes, edges] = COUNTERS.get_or_init(|| {
        let r = Registry::global();
        [
            r.counter(names::GRAPH_EXEC_NODES_VISITED_TOTAL),
            r.counter(names::GRAPH_EXEC_EDGES_TRAVERSED_TOTAL),
        ]
    });
    nodes.inc_by(nodes_visited);
    edges.inc_by(edges_traversed);
    if let Some((sink, span)) = current_sink() {
        for (name, value) in [
            ("nodes_visited", nodes_visited),
            ("edges_traversed", edges_traversed),
        ] {
            if value != 0 {
                sink.add_counter(span, name, value);
            }
        }
    }
}

/// Records `seconds` into `metric{stage="..."}` and appends the stage
/// to the active capture frame (if a query capture is open).
pub fn observe_stage(metric: &'static str, stage: &'static str, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    // A worker running under `buffered_stages` defers to its log; the
    // dispatching thread lands the observation at flush time.
    let diverted = STAGE_BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                buf.push((metric, stage, seconds));
                true
            }
            None => false,
        }
    });
    if diverted {
        return;
    }
    Registry::global()
        .histogram_with(metric, &[("stage", stage)])
        .observe_traced(seconds, current_trace_raw());
    CAPTURE.with(|c| {
        if let Some(frame) = c.borrow_mut().as_mut() {
            frame.stages.push((stage, seconds));
        }
    });
}

/// RAII stage span: records wall time into `metric{stage=...}` on drop
/// and, on sampled requests, doubles as a node in the span tree.
///
/// ```
/// let _span = create_obs::Span::enter(create_obs::names::PIPELINE_STAGE_SECONDS, "ner");
/// // ... stage work ...
/// ```
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    metric: &'static str,
    stage: &'static str,
    // Dropped after `Drop::drop` runs, so the histogram observation
    // happens while this span is still the current context.
    _tree: TreeSpan,
}

impl Span {
    /// Opens a span over `metric{stage=...}`. No-op (and no clock
    /// read) when the `enabled` feature is off.
    pub fn enter(metric: &'static str, stage: &'static str) -> Span {
        Span {
            start: crate::enabled().then(Instant::now),
            metric,
            stage,
            _tree: child_span(stage),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe_stage(self.metric, self.stage, start.elapsed().as_secs_f64());
        }
    }
}

/// Per-query capture: times the whole query, opens a capture frame so
/// stage spans and DAAT flushes on this thread attach to it, then on
/// `finish` records the total latency and hands the frame to the
/// slow-query log.
#[must_use = "call finish(..) to record the query"]
pub struct QueryCapture {
    start: Option<Instant>,
}

impl QueryCapture {
    /// Opens a capture frame on this thread. Two `Instant` reads and a
    /// thread-local swap on the warm-cache path; everything else is
    /// deferred to `finish`.
    pub fn begin() -> QueryCapture {
        if !crate::enabled() {
            return QueryCapture { start: None };
        }
        CAPTURE.with(|c| *c.borrow_mut() = Some(CaptureFrame::default()));
        QueryCapture {
            start: Some(Instant::now()),
        }
    }

    /// Closes the frame, records total query latency, and offers the
    /// query to the slow-query log.
    pub fn finish(self, query: &str, k: usize, policy: &'static str) {
        let Some(start) = self.start else {
            return;
        };
        let total = start.elapsed();
        let frame = CAPTURE
            .with(|c| c.borrow_mut().take())
            .unwrap_or_default();
        static QUERY_HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
        QUERY_HIST
            .get_or_init(|| Registry::global().histogram(names::QUERY_SECONDS))
            .observe_traced(total.as_secs_f64(), current_trace_raw());
        crate::slowlog::maybe_record(total, query, k, policy, &frame.stages, frame.daat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn parse_trace_hex_accepts_short_hex_rejects_junk() {
        assert_eq!(parse_trace_hex("ab12"), Some(0xab12));
        assert_eq!(parse_trace_hex(" ffffffffffffffff "), Some(u64::MAX));
        assert_eq!(parse_trace_hex(""), None);
        assert_eq!(parse_trace_hex("0"), None, "zero is reserved");
        assert_eq!(parse_trace_hex("12345678901234567"), None, "too long");
        assert_eq!(parse_trace_hex("xyz"), None);
    }

    #[test]
    fn context_guard_restores_previous() {
        assert_eq!(current_trace_raw(), None);
        {
            let _outer = install_context(Some(TraceContext {
                trace_id: 0xa,
                span_id: 1,
                sink: None,
            }));
            assert_eq!(current_trace_raw(), Some(0xa));
            assert_eq!(current_trace_id().as_deref(), Some("000000000000000a"));
            {
                let _inner = install_context(Some(TraceContext {
                    trace_id: 0xb,
                    span_id: 1,
                    sink: None,
                }));
                assert_eq!(current_trace_raw(), Some(0xb));
            }
            assert_eq!(current_trace_raw(), Some(0xa));
        }
        assert_eq!(current_trace_raw(), None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn carry_context_reinstalls_on_pool_workers() {
        use std::sync::atomic::AtomicU64;

        let pool = create_util::ThreadPool::new(2);
        let _guard = install_context(Some(TraceContext {
            trace_id: 0xdead_beef,
            span_id: 1,
            sink: None,
        }));
        let seen = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    if current_trace_raw() == Some(0xdead_beef) {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            seen.load(Ordering::Relaxed),
            4,
            "every pooled job ran under the submitter's trace context"
        );
        assert_eq!(current_trace_raw(), Some(0xdead_beef));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn request_trace_records_spans_from_pool_workers() {
        let _serial = crate::recorder::test_lock();
        let pool = create_util::ThreadPool::new(2);
        let hex;
        {
            let mut trace = RequestTrace::begin(Some("feedface"));
            hex = trace.hex().to_string();
            assert_eq!(hex, "00000000feedface");
            pool.scope(|scope| {
                for shard in 0..3u32 {
                    scope.spawn(move || {
                        let _span = shard_span(names::SPAN_KEYWORD_SHARD, shard);
                        add_span_counter("postings_advanced", 7);
                    });
                }
            });
            trace.set_root("/search");
        }
        let record = crate::recorder::find_trace(&hex).expect("trace recorded on drop");
        assert_eq!(record.root, "/search");
        assert_eq!(record.spans[0].id, 1);
        assert_eq!(record.spans[0].name, "/search");
        let shards: Vec<_> = record
            .spans
            .iter()
            .filter(|s| s.name == names::SPAN_KEYWORD_SHARD)
            .collect();
        assert_eq!(shards.len(), 3, "one span per pooled shard job");
        for span in &shards {
            assert_eq!(span.parent, 1, "pool workers inherit the root span as parent");
            assert!(span.duration_seconds >= 0.0);
            assert_eq!(span.counters, vec![("postings_advanced".to_string(), 7)]);
        }
        let mut shard_ids: Vec<_> = shards.iter().filter_map(|s| s.shard).collect();
        shard_ids.sort_unstable();
        assert_eq!(shard_ids, vec![0, 1, 2]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn tree_spans_nest_and_restore_context() {
        let _serial = crate::recorder::test_lock();
        let mut trace = RequestTrace::begin(None);
        trace.set_root("nest");
        let hex = trace.hex().to_string();
        {
            let _outer = child_span("outer");
            let outer_span = current_context().unwrap().span_id;
            {
                let _inner = child_span("inner");
                assert_ne!(current_context().unwrap().span_id, outer_span);
            }
            assert_eq!(current_context().unwrap().span_id, outer_span);
        }
        assert_eq!(current_context().unwrap().span_id, 1);
        drop(trace);
        let record = crate::recorder::find_trace(&hex).expect("recorded");
        let outer = record.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = record.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, 1);
        assert_eq!(inner.parent, outer.id);
    }

    #[test]
    fn daat_stats_merge_adds_fields() {
        let mut a = DaatStats {
            postings_advanced: 1,
            candidates_pruned: 2,
            fuzzy_expansions: 3,
            heap_evictions: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.postings_advanced, 2);
        assert_eq!(a.heap_evictions, 8);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_records_into_global_histogram() {
        let h = Registry::global().histogram_with("test_span_seconds", &[("stage", "unit")]);
        let before = h.count();
        {
            let _span = Span::enter("test_span_seconds", "unit");
        }
        assert_eq!(h.count(), before + 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn buffered_stages_divert_then_flush_into_registry() {
        let h = Registry::global().histogram_with("test_buffered_seconds", &[("stage", "unit")]);
        let before = h.count();
        let ((), log) = buffered_stages(|| {
            observe_stage("test_buffered_seconds", "unit", 0.002);
            observe_stage("test_buffered_seconds", "unit", 0.003);
        });
        assert_eq!(h.count(), before, "buffered observations bypass the registry");
        assert_eq!(log.len(), 2);
        flush_stages(log);
        assert_eq!(h.count(), before + 2, "flush lands every observation");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn buffered_stages_nest_and_restore() {
        let ((), outer) = buffered_stages(|| {
            observe_stage("test_nested_seconds", "outer", 0.001);
            let ((), inner) = buffered_stages(|| {
                observe_stage("test_nested_seconds", "inner", 0.001);
            });
            assert_eq!(inner.len(), 1);
            observe_stage("test_nested_seconds", "outer", 0.001);
        });
        assert_eq!(outer.len(), 2, "outer buffer survives the nested scope");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capture_collects_stages_and_daat() {
        let _cap = QueryCapture::begin();
        observe_stage("test_capture_seconds", "alpha", 0.001);
        record_daat(DaatStats {
            postings_advanced: 5,
            ..DaatStats::default()
        });
        let frame = CAPTURE.with(|c| c.borrow_mut().take()).expect("frame open");
        assert_eq!(frame.stages, vec![("alpha", 0.001)]);
        assert_eq!(frame.daat.postings_advanced, 5);
    }
}
