//! Span/tracing layer: per-request trace IDs, RAII stage spans, and
//! the per-query capture frame the slow-query log reads from.
//!
//! Trace IDs are process-unique 64-bit splitmix64 outputs rendered as
//! 16 hex chars. The *current* trace is thread-local: the server's
//! router installs it for the duration of a request, so anything the
//! handler logs or records downstream can attach it. Batch searches
//! that hop onto `create-util` pool workers run without the dispatch
//! thread's trace ID — those records carry an empty trace (documented
//! limitation; a thread-local can't follow a work-stealing deque).

use crate::metrics::Registry;
use crate::names;
use crate::Histogram;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn trace_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        splitmix64(nanos ^ u64::from(std::process::id()))
    })
}

/// Generates a fresh 16-hex-char trace ID.
pub fn next_trace_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", splitmix64(trace_seed().wrapping_add(n)))
}

thread_local! {
    static CURRENT_TRACE: RefCell<Option<String>> = const { RefCell::new(None) };
    static CAPTURE: RefCell<Option<CaptureFrame>> = const { RefCell::new(None) };
    static STAGE_BUFFER: RefCell<Option<Vec<(&'static str, &'static str, f64)>>> =
        const { RefCell::new(None) };
}

/// Stage observations diverted from the registry by [`buffered_stages`],
/// waiting to be flushed on another thread via [`flush_stages`].
#[derive(Debug, Default)]
pub struct StageLog(Vec<(&'static str, &'static str, f64)>);

impl StageLog {
    /// Number of buffered observations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the log holds no observations.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Folds another log's observations onto the end of this one.
    pub fn merge(&mut self, other: StageLog) {
        self.0.extend(other.0);
    }
}

/// Runs `f` with this thread's stage observations diverted into a
/// [`StageLog`] instead of the global registry.
///
/// Pool workers use this so their span timings survive the hop back to
/// the dispatching thread: `observe_stage` (and thus every [`Span`])
/// inside `f` appends to the log, and the caller later applies the
/// batch and calls [`flush_stages`] to land the timings in the registry
/// (and the active capture frame) exactly once. Nesting restores the
/// previous buffer on exit.
pub fn buffered_stages<T>(f: impl FnOnce() -> T) -> (T, StageLog) {
    if !crate::enabled() {
        return (f(), StageLog::default());
    }
    let prev = STAGE_BUFFER.with(|b| b.borrow_mut().replace(Vec::new()));
    let out = f();
    let buffered = STAGE_BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        let buffered = slot.take().unwrap_or_default();
        *slot = prev;
        buffered
    });
    (out, StageLog(buffered))
}

/// Lands a [`StageLog`]'s observations in the global registry and the
/// calling thread's active capture frame.
pub fn flush_stages(log: StageLog) {
    if !crate::enabled() {
        return;
    }
    for (metric, stage, seconds) in log.0 {
        observe_stage(metric, stage, seconds);
    }
}

/// RAII guard restoring the previous thread-local trace on drop.
pub struct TraceGuard {
    prev: Option<String>,
}

/// Installs `id` as the current thread's trace for the guard's
/// lifetime (requests are handled on one thread end to end).
pub fn set_current_trace(id: String) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|t| t.borrow_mut().replace(id));
    TraceGuard { prev }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_TRACE.with(|t| *t.borrow_mut() = prev);
    }
}

/// The trace ID installed on this thread, if any.
pub fn current_trace_id() -> Option<String> {
    CURRENT_TRACE.with(|t| t.borrow().clone())
}

/// DAAT executor statistics for one query, batched into the registry
/// (and the active capture frame) in a single flush per search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaatStats {
    /// Postings positions cursors moved past (advance + seek deltas).
    pub postings_advanced: u64,
    /// Candidates discarded by the MaxScore upper-bound test.
    pub candidates_pruned: u64,
    /// Dictionary terms produced by fuzzy expansion.
    pub fuzzy_expansions: u64,
    /// Top-k heap evictions (pops past capacity).
    pub heap_evictions: u64,
}

impl DaatStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &DaatStats) {
        self.postings_advanced += other.postings_advanced;
        self.candidates_pruned += other.candidates_pruned;
        self.fuzzy_expansions += other.fuzzy_expansions;
        self.heap_evictions += other.heap_evictions;
    }
}

#[derive(Debug, Default)]
struct CaptureFrame {
    stages: Vec<(&'static str, f64)>,
    daat: DaatStats,
}

/// Flushes one query's DAAT stats into the global counters and the
/// active capture frame. Call once per `Index::search`.
pub fn record_daat(stats: DaatStats) {
    if !crate::enabled() || stats == DaatStats::default() {
        return;
    }
    static COUNTERS: OnceLock<[Arc<crate::Counter>; 4]> = OnceLock::new();
    let [advanced, pruned, fuzzy, evicted] = COUNTERS.get_or_init(|| {
        let r = Registry::global();
        [
            r.counter(names::DAAT_POSTINGS_ADVANCED_TOTAL),
            r.counter(names::DAAT_CANDIDATES_PRUNED_TOTAL),
            r.counter(names::DAAT_FUZZY_EXPANSIONS_TOTAL),
            r.counter(names::DAAT_HEAP_EVICTIONS_TOTAL),
        ]
    });
    advanced.inc_by(stats.postings_advanced);
    pruned.inc_by(stats.candidates_pruned);
    fuzzy.inc_by(stats.fuzzy_expansions);
    evicted.inc_by(stats.heap_evictions);
    CAPTURE.with(|c| {
        if let Some(frame) = c.borrow_mut().as_mut() {
            frame.daat.merge(&stats);
        }
    });
}

/// Flushes one graph query's traversal counts into the registry.
pub fn record_graph_exec(nodes_visited: u64, edges_traversed: u64) {
    if !crate::enabled() || (nodes_visited == 0 && edges_traversed == 0) {
        return;
    }
    static COUNTERS: OnceLock<[Arc<crate::Counter>; 2]> = OnceLock::new();
    let [nodes, edges] = COUNTERS.get_or_init(|| {
        let r = Registry::global();
        [
            r.counter(names::GRAPH_EXEC_NODES_VISITED_TOTAL),
            r.counter(names::GRAPH_EXEC_EDGES_TRAVERSED_TOTAL),
        ]
    });
    nodes.inc_by(nodes_visited);
    edges.inc_by(edges_traversed);
}

/// Records `seconds` into `metric{stage="..."}` and appends the stage
/// to the active capture frame (if a query capture is open).
pub fn observe_stage(metric: &'static str, stage: &'static str, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    // A worker running under `buffered_stages` defers to its log; the
    // dispatching thread lands the observation at flush time.
    let diverted = STAGE_BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                buf.push((metric, stage, seconds));
                true
            }
            None => false,
        }
    });
    if diverted {
        return;
    }
    Registry::global()
        .histogram_with(metric, &[("stage", stage)])
        .observe(seconds);
    CAPTURE.with(|c| {
        if let Some(frame) = c.borrow_mut().as_mut() {
            frame.stages.push((stage, seconds));
        }
    });
}

/// RAII stage span: records wall time into `metric{stage=...}` on drop.
///
/// ```
/// let _span = create_obs::Span::enter(create_obs::names::PIPELINE_STAGE_SECONDS, "ner");
/// // ... stage work ...
/// ```
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    metric: &'static str,
    stage: &'static str,
}

impl Span {
    /// Opens a span over `metric{stage=...}`. No-op (and no clock
    /// read) when the `enabled` feature is off.
    pub fn enter(metric: &'static str, stage: &'static str) -> Span {
        Span {
            start: crate::enabled().then(Instant::now),
            metric,
            stage,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe_stage(self.metric, self.stage, start.elapsed().as_secs_f64());
        }
    }
}

/// Per-query capture: times the whole query, opens a capture frame so
/// stage spans and DAAT flushes on this thread attach to it, then on
/// `finish` records the total latency and hands the frame to the
/// slow-query log.
#[must_use = "call finish(..) to record the query"]
pub struct QueryCapture {
    start: Option<Instant>,
}

impl QueryCapture {
    /// Opens a capture frame on this thread. Two `Instant` reads and a
    /// thread-local swap on the warm-cache path; everything else is
    /// deferred to `finish`.
    pub fn begin() -> QueryCapture {
        if !crate::enabled() {
            return QueryCapture { start: None };
        }
        CAPTURE.with(|c| *c.borrow_mut() = Some(CaptureFrame::default()));
        QueryCapture {
            start: Some(Instant::now()),
        }
    }

    /// Closes the frame, records total query latency, and offers the
    /// query to the slow-query log.
    pub fn finish(self, query: &str, k: usize, policy: &'static str) {
        let Some(start) = self.start else {
            return;
        };
        let total = start.elapsed();
        let frame = CAPTURE
            .with(|c| c.borrow_mut().take())
            .unwrap_or_default();
        static QUERY_HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
        QUERY_HIST
            .get_or_init(|| Registry::global().histogram(names::QUERY_SECONDS))
            .observe(total.as_secs_f64());
        crate::slowlog::maybe_record(total, query, k, policy, &frame.stages, frame.daat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn trace_guard_restores_previous() {
        assert_eq!(current_trace_id(), None);
        {
            let _outer = set_current_trace("outer".to_string());
            assert_eq!(current_trace_id().as_deref(), Some("outer"));
            {
                let _inner = set_current_trace("inner".to_string());
                assert_eq!(current_trace_id().as_deref(), Some("inner"));
            }
            assert_eq!(current_trace_id().as_deref(), Some("outer"));
        }
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn daat_stats_merge_adds_fields() {
        let mut a = DaatStats {
            postings_advanced: 1,
            candidates_pruned: 2,
            fuzzy_expansions: 3,
            heap_evictions: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.postings_advanced, 2);
        assert_eq!(a.heap_evictions, 8);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_records_into_global_histogram() {
        let h = Registry::global().histogram_with("test_span_seconds", &[("stage", "unit")]);
        let before = h.count();
        {
            let _span = Span::enter("test_span_seconds", "unit");
        }
        assert_eq!(h.count(), before + 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn buffered_stages_divert_then_flush_into_registry() {
        let h = Registry::global().histogram_with("test_buffered_seconds", &[("stage", "unit")]);
        let before = h.count();
        let ((), log) = buffered_stages(|| {
            observe_stage("test_buffered_seconds", "unit", 0.002);
            observe_stage("test_buffered_seconds", "unit", 0.003);
        });
        assert_eq!(h.count(), before, "buffered observations bypass the registry");
        assert_eq!(log.len(), 2);
        flush_stages(log);
        assert_eq!(h.count(), before + 2, "flush lands every observation");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn buffered_stages_nest_and_restore() {
        let ((), outer) = buffered_stages(|| {
            observe_stage("test_nested_seconds", "outer", 0.001);
            let ((), inner) = buffered_stages(|| {
                observe_stage("test_nested_seconds", "inner", 0.001);
            });
            assert_eq!(inner.len(), 1);
            observe_stage("test_nested_seconds", "outer", 0.001);
        });
        assert_eq!(outer.len(), 2, "outer buffer survives the nested scope");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capture_collects_stages_and_daat() {
        let _cap = QueryCapture::begin();
        observe_stage("test_capture_seconds", "alpha", 0.001);
        record_daat(DaatStats {
            postings_advanced: 5,
            ..DaatStats::default()
        });
        let frame = CAPTURE.with(|c| c.borrow_mut().take()).expect("frame open");
        assert_eq!(frame.stages, vec![("alpha", 0.001)]);
        assert_eq!(frame.daat.postings_advanced, 5);
    }
}
