//! Flight recorder: completed request traces as hierarchical span
//! trees, kept in fixed-size in-memory rings.
//!
//! Every sampled request owns a [`SpanSink`] shared (via the
//! [`crate::TraceContext`]) by every thread that works on the request —
//! the dispatch thread and any `create-util` pool workers it fans out
//! to. Spans append concurrently under one mutex; when the request
//! finishes, the assembled [`TraceRecord`] lands in a ring sized for
//! always-on operation: head sampling (runtime-configurable via
//! [`set_trace_sample_rate`], default 1.0) decides whether a request
//! collects spans at all, and completed traces that crossed the
//! slow-query threshold go to a separate ring so a burst of fast
//! requests can never evict the interesting outliers.
//!
//! Served by the REST API as `GET /trace/{id}` (full span tree) and
//! `GET /debug/traces` (summaries + sampling config).

use crate::names;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Completed traces retained in the general ring.
pub const RECORDER_CAPACITY: usize = 256;
/// Completed slow traces retained in the always-kept ring.
pub const RECORDER_SLOW_CAPACITY: usize = 64;

// f64 bit pattern of 1.0 — sample everything by default.
static SAMPLE_RATE_BITS: AtomicU64 = AtomicU64::new(0x3FF0_0000_0000_0000);

/// Sets the head-sampling rate in `[0.0, 1.0]`: the fraction of
/// requests that collect a span tree. Unsampled requests still carry a
/// trace ID (for `X-Trace-Id`, the slowlog, and exemplars) but record
/// no spans. The decision is deterministic per trace ID, so a client
/// retrying with the same inbound `X-Trace-Id` gets the same verdict.
pub fn set_trace_sample_rate(rate: f64) {
    let rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 1.0 };
    SAMPLE_RATE_BITS.store(rate.to_bits(), Ordering::Relaxed);
}

/// The current head-sampling rate.
pub fn trace_sample_rate() -> f64 {
    f64::from_bits(SAMPLE_RATE_BITS.load(Ordering::Relaxed))
}

/// Head-sampling verdict for a trace ID.
pub(crate) fn sample(trace_id: u64) -> bool {
    let rate = trace_sample_rate();
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // Mix the ID so sequential IDs sample uniformly; take 53 bits for
    // an exact fraction in [0, 1).
    let unit = (crate::trace::splitmix64(trace_id) >> 11) as f64 / (1u64 << 53) as f64;
    unit < rate
}

/// One node of a recorded span tree. `parent` is the id of the
/// enclosing span (`0` only on the root, which always has id `1`), so
/// the flat list reconstructs the tree unambiguously.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is always `1`.
    pub id: u64,
    /// Id of the enclosing span; `0` on the root.
    pub parent: u64,
    /// Stage or structural span name (`keyword_search`, `keyword_shard`, …).
    pub name: String,
    /// Shard index for per-shard fan-out spans.
    pub shard: Option<u32>,
    /// Start offset from the request start, in seconds.
    pub start_seconds: f64,
    /// Wall time, in seconds; `-1.0` while the span is still open.
    pub duration_seconds: f64,
    /// Counters attached while the span was current
    /// (`postings_advanced`, `cache_hit`, …), accumulated by name.
    pub counters: Vec<(String, u64)>,
}

/// The per-request span collector, shared across threads through the
/// cloned [`crate::TraceContext`]. Spans from pool workers append here
/// directly, so one coherent tree forms regardless of which threads
/// ran the work.
#[derive(Debug)]
pub struct SpanSink {
    started: Instant,
    next_span_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl SpanSink {
    /// A sink whose root span (id 1) is pre-opened; the root's name and
    /// duration are filled in by [`SpanSink::finish_root`].
    pub(crate) fn new() -> SpanSink {
        SpanSink {
            started: Instant::now(),
            next_span_id: AtomicU64::new(2),
            spans: Mutex::new(vec![SpanRecord {
                id: 1,
                parent: 0,
                name: String::new(),
                shard: None,
                start_seconds: 0.0,
                duration_seconds: -1.0,
                counters: Vec::new(),
            }]),
        }
    }

    /// Seconds since the request started.
    pub(crate) fn offset(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Opens a child span and returns its id.
    pub(crate) fn open_span(&self, parent: u64, name: &str, shard: Option<u32>) -> u64 {
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            id,
            parent,
            name: name.to_string(),
            shard,
            start_seconds: self.offset(),
            duration_seconds: -1.0,
            counters: Vec::new(),
        };
        self.spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(record);
        id
    }

    /// Closes a span with its measured duration.
    pub(crate) fn close_span(&self, id: u64, duration_seconds: f64) {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(span) = spans.iter_mut().rev().find(|s| s.id == id) {
            span.duration_seconds = duration_seconds;
        }
    }

    /// Accumulates a named counter onto an open span.
    pub(crate) fn add_counter(&self, span_id: u64, name: &str, value: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        let Some(span) = spans.iter_mut().rev().find(|s| s.id == span_id) else {
            return;
        };
        match span.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => span.counters.push((name.to_string(), value)),
        }
    }

    /// Names and closes the root span, returning the full span list
    /// (root first, children in open order).
    pub(crate) fn finish_root(&self, name: &str, total_seconds: f64) -> Vec<SpanRecord> {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(root) = spans.first_mut() {
            root.name = name.to_string();
            root.duration_seconds = total_seconds;
        }
        std::mem::take(&mut *spans)
    }
}

/// One completed, recorded request trace.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// 16-hex-char trace ID (the request's `X-Trace-Id`).
    pub trace_id: String,
    /// Root span name — the route pattern the request dispatched under.
    pub root: String,
    /// End-to-end request latency in seconds.
    pub total_seconds: f64,
    /// Whether the request crossed the slow-query threshold (slow
    /// traces live in their own ring and are never evicted by fast
    /// traffic).
    pub slow: bool,
    /// The span tree, root first, as a flat parent-linked list.
    pub spans: Vec<SpanRecord>,
}

/// Summary row for `GET /debug/traces`.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// 16-hex-char trace ID.
    pub trace_id: String,
    /// Root span name.
    pub root: String,
    /// End-to-end latency in seconds.
    pub total_seconds: f64,
    /// Whether the trace sits in the slow ring.
    pub slow: bool,
    /// Number of spans in the recorded tree.
    pub spans: usize,
}

static TRACES: Mutex<VecDeque<TraceRecord>> = Mutex::new(VecDeque::new());
static SLOW_TRACES: Mutex<VecDeque<TraceRecord>> = Mutex::new(VecDeque::new());

/// Persists a completed trace into its ring.
pub(crate) fn record(record: TraceRecord) {
    crate::counter(names::TRACES_RECORDED_TOTAL).inc();
    let (ring, capacity) = if record.slow {
        (&SLOW_TRACES, RECORDER_SLOW_CAPACITY)
    } else {
        (&TRACES, RECORDER_CAPACITY)
    };
    let mut ring = ring.lock().unwrap_or_else(|p| p.into_inner());
    if ring.len() == capacity {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// Looks a recorded trace up by its 16-hex-char ID (newest match
/// wins; both rings are searched).
pub fn find_trace(trace_id: &str) -> Option<TraceRecord> {
    for ring in [&SLOW_TRACES, &TRACES] {
        let ring = ring.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(t) = ring.iter().rev().find(|t| t.trace_id == trace_id) {
            return Some(t.clone());
        }
    }
    None
}

/// Summaries of every retained trace: slow traces first, then the
/// general ring, each oldest-first.
pub fn trace_summaries() -> Vec<TraceSummary> {
    let mut out = Vec::new();
    for ring in [&SLOW_TRACES, &TRACES] {
        let ring = ring.lock().unwrap_or_else(|p| p.into_inner());
        out.extend(ring.iter().map(|t| TraceSummary {
            trace_id: t.trace_id.clone(),
            root: t.root.clone(),
            total_seconds: t.total_seconds,
            slow: t.slow,
            spans: t.spans.len(),
        }));
    }
    out
}

/// Empties both recorder rings (tests).
pub fn clear_recorded_traces() {
    for ring in [&SLOW_TRACES, &TRACES] {
        ring.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// Serializes unit tests that mutate the global sample rate or rings.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rate_round_trips_and_clamps() {
        let _serial = test_lock();
        let prior = trace_sample_rate();
        set_trace_sample_rate(0.25);
        assert_eq!(trace_sample_rate(), 0.25);
        set_trace_sample_rate(7.0);
        assert_eq!(trace_sample_rate(), 1.0);
        set_trace_sample_rate(-1.0);
        assert_eq!(trace_sample_rate(), 0.0);
        set_trace_sample_rate(prior);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let _serial = test_lock();
        let prior = trace_sample_rate();
        set_trace_sample_rate(0.5);
        let hits = (0..10_000u64).filter(|&id| sample(id)).count();
        assert!((4_000..6_000).contains(&hits), "rate 0.5 hit {hits}/10000");
        assert_eq!(sample(42), sample(42), "verdict is deterministic");
        set_trace_sample_rate(1.0);
        assert!(sample(7));
        set_trace_sample_rate(0.0);
        assert!(!sample(7));
        set_trace_sample_rate(prior);
    }

    #[test]
    fn sink_builds_a_parent_linked_tree() {
        let sink = SpanSink::new();
        let a = sink.open_span(1, "keyword_search", None);
        let s0 = sink.open_span(a, "keyword_shard", Some(0));
        sink.add_counter(s0, "postings_advanced", 5);
        sink.add_counter(s0, "postings_advanced", 3);
        sink.close_span(s0, 0.001);
        sink.close_span(a, 0.002);
        let spans = sink.finish_root("/search", 0.003);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].id, 1);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[0].name, "/search");
        assert_eq!(spans[1].parent, 1);
        assert_eq!(spans[2].parent, spans[1].id);
        assert_eq!(spans[2].shard, Some(0));
        assert_eq!(spans[2].counters, vec![("postings_advanced".to_string(), 8)]);
        assert!(spans.iter().all(|s| s.duration_seconds >= 0.0));
    }

    #[test]
    fn rings_retain_and_find_by_id() {
        let _serial = test_lock();
        clear_recorded_traces();
        let mk = |id: &str, slow: bool| TraceRecord {
            trace_id: id.to_string(),
            root: "/search".to_string(),
            total_seconds: 0.5,
            slow,
            spans: Vec::new(),
        };
        record(mk("aaaaaaaaaaaaaaaa", false));
        record(mk("bbbbbbbbbbbbbbbb", true));
        assert!(find_trace("aaaaaaaaaaaaaaaa").is_some());
        assert!(find_trace("bbbbbbbbbbbbbbbb").is_some());
        assert!(find_trace("cccccccccccccccc").is_none());
        let summaries = trace_summaries();
        assert_eq!(summaries.len(), 2);
        assert!(summaries.iter().any(|s| s.slow));
        // The general ring evicts oldest-first at capacity; the slow
        // entry survives a flood of fast traces.
        for i in 0..RECORDER_CAPACITY + 8 {
            record(mk(&format!("{i:016x}"), false));
        }
        assert!(find_trace("aaaaaaaaaaaaaaaa").is_none(), "fast trace evicted");
        assert!(find_trace("bbbbbbbbbbbbbbbb").is_some(), "slow trace retained");
        clear_recorded_traces();
    }
}
