//! Ring-buffer event log with severity levels.
//!
//! Events above the configured level are dropped; retained events go
//! to a fixed-capacity ring (oldest evicted first), a per-level
//! counter, and stderr. The level is runtime-settable (the server's
//! `--log-level` knob lands here).

use crate::metrics::Registry;
use crate::names;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Retained events before the ring starts evicting.
pub const EVENT_RING_CAPACITY: usize = 256;

/// Severity, ordered most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    /// Lower-case name (`error` / `warn` / `info` / `debug`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a case-insensitive level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global log level.
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The global log level.
pub fn log_level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// One retained log event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (process lifetime).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem that emitted the event (static, e.g. "server").
    pub target: &'static str,
    /// Message text.
    pub message: String,
    /// Trace active on the emitting thread, if any.
    pub trace_id: Option<String>,
}

static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

/// Emits an event. Dropped without cost when `level` is below the
/// configured threshold or the `enabled` feature is off.
pub fn log(level: Level, target: &'static str, message: impl Into<String>) {
    if !crate::enabled() || level > log_level() {
        return;
    }
    let message = message.into();
    let trace_id = crate::trace::current_trace_id();
    Registry::global()
        .counter_with(names::LOG_EVENTS_TOTAL, &[("level", level.as_str())])
        .inc();
    match &trace_id {
        Some(trace) => eprintln!("[{}] {} [{trace}] {}", level.as_str(), target, message),
        None => eprintln!("[{}] {} {}", level.as_str(), target, message),
    }
    let mut ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    let seq = ring.back().map(|e| e.seq + 1).unwrap_or(0);
    if ring.len() == EVENT_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(Event {
        seq,
        level,
        target,
        message,
        trace_id,
    });
}

/// Snapshot of retained events, oldest first.
pub fn recent_events() -> Vec<Event> {
    let ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    ring.iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ring_retains_and_filters() {
        let prior = log_level();
        set_log_level(Level::Info);
        log(Level::Debug, "test", "dropped: below level");
        log(Level::Info, "test", "ring_retains_and_filters marker");
        set_log_level(prior);
        let events = recent_events();
        assert!(events
            .iter()
            .any(|e| e.message == "ring_retains_and_filters marker"));
        assert!(!events.iter().any(|e| e.message.starts_with("dropped:")));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let prior = log_level();
        set_log_level(Level::Info);
        for i in 0..EVENT_RING_CAPACITY + 5 {
            log(Level::Info, "test", format!("evict-{i}"));
        }
        set_log_level(prior);
        let events = recent_events();
        assert!(events.len() <= EVENT_RING_CAPACITY);
        // Sequence numbers stay monotonically increasing across eviction.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
