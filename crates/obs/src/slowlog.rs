//! Slow-query log: queries whose total latency crosses a runtime
//! threshold are captured into a fixed-capacity ring with their trace
//! ID, per-stage timings, and DAAT executor stats.

use crate::events::{log, Level};
use crate::trace::{current_trace_id, DaatStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Retained slow queries before the ring starts evicting.
pub const SLOWLOG_CAPACITY: usize = 128;

const DEFAULT_THRESHOLD_NANOS: u64 = 250_000_000; // 250ms

static THRESHOLD_NANOS: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_NANOS);

/// Sets the slow-query threshold. `Duration::ZERO` captures every
/// query (useful in tests and when profiling).
pub fn set_slow_query_threshold(threshold: Duration) {
    let nanos = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
    THRESHOLD_NANOS.store(nanos, Ordering::Relaxed);
}

/// The current slow-query threshold.
pub fn slow_query_threshold() -> Duration {
    Duration::from_nanos(THRESHOLD_NANOS.load(Ordering::Relaxed))
}

/// One captured slow query.
#[derive(Clone, Debug)]
pub struct SlowQueryRecord {
    /// Monotonic sequence number (process lifetime).
    pub seq: u64,
    /// Trace active on the query thread, if any. Pool workers inherit
    /// the submitting request's context, so batch queries carry the
    /// dispatching request's trace ID.
    pub trace_id: Option<String>,
    /// Query text.
    pub query: String,
    /// Requested result count.
    pub k: usize,
    /// Merge policy label.
    pub policy: String,
    /// End-to-end latency in seconds.
    pub total_seconds: f64,
    /// Per-stage wall times `(stage, seconds)` in execution order.
    pub stages: Vec<(String, f64)>,
    /// DAAT executor stats accumulated during the query.
    pub daat: DaatStats,
}

static RING: Mutex<VecDeque<SlowQueryRecord>> = Mutex::new(VecDeque::new());

/// Captures the query if it crossed the threshold. Called by
/// `QueryCapture::finish` with the closed capture frame.
pub(crate) fn maybe_record(
    total: Duration,
    query: &str,
    k: usize,
    policy: &'static str,
    stages: &[(&'static str, f64)],
    daat: DaatStats,
) {
    if total.as_nanos() < u128::from(THRESHOLD_NANOS.load(Ordering::Relaxed)) {
        return;
    }
    let total_seconds = total.as_secs_f64();
    log(
        Level::Warn,
        "slowlog",
        format!("slow query ({:.1}ms, policy {policy}): {query}", total_seconds * 1e3),
    );
    let mut ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    let seq = ring.back().map(|r| r.seq + 1).unwrap_or(0);
    if ring.len() == SLOWLOG_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(SlowQueryRecord {
        seq,
        trace_id: current_trace_id(),
        query: query.to_string(),
        k,
        policy: policy.to_string(),
        total_seconds,
        stages: stages.iter().map(|(s, t)| (s.to_string(), *t)).collect(),
        daat,
    });
}

/// Snapshot of captured slow queries, oldest first.
pub fn slow_queries() -> Vec<SlowQueryRecord> {
    let ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    ring.iter().cloned().collect()
}

/// Empties the slow-query ring (tests).
pub fn clear_slow_queries() {
    let mut ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    #[test]
    fn threshold_zero_captures_and_higher_skips() {
        let prior = slow_query_threshold();
        set_slow_query_threshold(Duration::ZERO);
        maybe_record(
            Duration::from_micros(5),
            "fast query captured at zero",
            10,
            "neo4j_first",
            &[("parse", 1e-6), ("merge", 2e-6)],
            DaatStats {
                postings_advanced: 7,
                ..DaatStats::default()
            },
        );
        set_slow_query_threshold(Duration::from_secs(3600));
        maybe_record(
            Duration::from_micros(5),
            "fast query skipped at 1h",
            10,
            "neo4j_first",
            &[],
            DaatStats::default(),
        );
        set_slow_query_threshold(prior);

        let records = slow_queries();
        let hit = records
            .iter()
            .find(|r| r.query == "fast query captured at zero")
            .expect("captured");
        assert_eq!(hit.policy, "neo4j_first");
        assert_eq!(hit.stages.len(), 2);
        assert_eq!(hit.daat.postings_advanced, 7);
        assert!(!records.iter().any(|r| r.query.contains("skipped")));
    }

    #[test]
    fn threshold_round_trips() {
        let prior = slow_query_threshold();
        set_slow_query_threshold(Duration::from_millis(15));
        assert_eq!(slow_query_threshold(), Duration::from_millis(15));
        set_slow_query_threshold(prior);
    }
}
