//! Synthetic temporal-relation datasets (I2B2-2012-like and TB-Dense-like).
//!
//! The paper evaluates its temporal module on I2B2-2012 and TB-Dense, both
//! license-gated (DESIGN.md substitution S3). These generators keep what
//! drives the paper's claim: gold pairwise labels **derived from a latent
//! interval timeline** (hence globally consistent under transitivity and
//! symmetry), with *noisy textual cues* as the only local evidence — so a
//! purely local classifier makes dependency-violating errors that PSL
//! regularization and global inference can repair.
//!
//! * `i2b2_like` — 3 labels (BEFORE/AFTER/OVERLAP), pairs within a text
//!   window, clinically flavored event surfaces;
//! * `tbdense_like` — 6 labels (adds VAGUE/INCLUDES/IS_INCLUDED), dense
//!   pairs as in TB-Dense.

use create_ontology::RelationType;
use create_util::Rng;

/// One event mention in a temporal document, in text order.
#[derive(Debug, Clone)]
pub struct TemporalEvent {
    /// Surface form (an event head like "admitted", "fever").
    pub surface: String,
    /// The connective that precedes this event in the narrative ("", "then",
    /// "previously", …) — the observable cue.
    pub cue_before: String,
    /// Sentence index in the document.
    pub sentence: usize,
    /// Latent time interval (start, end). Exposed for oracle baselines and
    /// tests only; real features must not touch it.
    pub interval: (f64, f64),
}

/// A document: events in text order and labeled pairs `(i, j, label)` with
/// `i < j` in text order (label reads "event i is `label` event j").
#[derive(Debug, Clone)]
pub struct TemporalDoc {
    /// Event mentions in text order.
    pub events: Vec<TemporalEvent>,
    /// Gold labeled pairs.
    pub pairs: Vec<(usize, usize, RelationType)>,
}

/// A full dataset with its label inventory.
#[derive(Debug, Clone)]
pub struct TemporalDataset {
    /// Documents.
    pub docs: Vec<TemporalDoc>,
    /// The label set (3 for I2B2-like, 6 for TB-Dense-like).
    pub labels: Vec<RelationType>,
    /// Dataset display name.
    pub name: &'static str,
}

impl TemporalDataset {
    /// Total number of labeled pairs.
    pub fn num_pairs(&self) -> usize {
        self.docs.iter().map(|d| d.pairs.len()).sum()
    }

    /// Splits into (train, test) by document index.
    pub fn split(&self, train_fraction: f64) -> (Vec<&TemporalDoc>, Vec<&TemporalDoc>) {
        let cut = ((self.docs.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.docs.len().saturating_sub(1).max(1));
        (
            self.docs[..cut].iter().collect(),
            self.docs[cut..].iter().collect(),
        )
    }
}

const EVENT_SURFACES: &[&str] = &[
    "admitted",
    "fever",
    "cough",
    "intubated",
    "transferred",
    "chest pain",
    "discharged",
    "biopsy",
    "surgery",
    "chemotherapy",
    "seizure",
    "extubated",
    "dialysis",
    "transfusion",
    "stroke",
    "arrest",
    "resuscitated",
    "catheterization",
    "ablation",
    "relapse",
    "remission",
    "vomiting",
    "hypotension",
    "sepsis",
    "recovery",
];

/// Cue connectives by true relation of (previous-in-text event → this
/// event). The generator samples the *true* cue with probability
/// `1 - noise`, otherwise a misleading or vacuous cue.
#[allow(clippy::explicit_auto_deref)]
fn cue_for(rng: &mut Rng, rel: RelationType, noise: f64) -> &'static str {
    const BEFORE_CUES: &[&str] = &[
        "then",
        "later",
        "subsequently",
        "after which",
        "followed by",
    ];
    const AFTER_CUES: &[&str] = &["previously", "before that", "earlier", "prior to this"];
    const OVERLAP_CUES: &[&str] = &[
        "meanwhile",
        "at the same time",
        "concurrently",
        "during which",
    ];
    const VACUOUS: &[&str] = &["and", "also", "notably", ""];
    if rng.chance(noise) {
        // Misleading or vacuous.
        let pools: [&[&str]; 4] = [BEFORE_CUES, AFTER_CUES, OVERLAP_CUES, VACUOUS];
        let k = rng.below(4);
        return *rng.choose(pools[k]);
    }
    match rel {
        // prev BEFORE cur → cur happened after prev → forward-flow cue
        RelationType::Before => *rng.choose(BEFORE_CUES),
        RelationType::After => *rng.choose(AFTER_CUES),
        RelationType::Overlap | RelationType::Includes | RelationType::IsIncluded => {
            *rng.choose(OVERLAP_CUES)
        }
        _ => *rng.choose(VACUOUS),
    }
}

/// Derives a 3-way interval relation.
fn relation3(a: (f64, f64), b: (f64, f64)) -> RelationType {
    if a.1 < b.0 {
        RelationType::Before
    } else if b.1 < a.0 {
        RelationType::After
    } else {
        RelationType::Overlap
    }
}

/// Derives a 6-way (TB-Dense style) interval relation.
fn relation6(a: (f64, f64), b: (f64, f64)) -> RelationType {
    if a.1 < b.0 {
        RelationType::Before
    } else if b.1 < a.0 {
        RelationType::After
    } else if a.0 <= b.0 && b.1 <= a.1 && (a.0 < b.0 || b.1 < a.1) {
        RelationType::Includes
    } else if b.0 <= a.0 && a.1 <= b.1 && (b.0 < a.0 || a.1 < b.1) {
        RelationType::IsIncluded
    } else {
        RelationType::Overlap
    }
}

fn generate_doc(rng: &mut Rng, six_way: bool, noise: f64, vague_rate: f64) -> TemporalDoc {
    let n = rng.range(5, 10);
    // Latent intervals along a timeline; durations vary so containment
    // happens naturally.
    let mut intervals: Vec<(f64, f64)> = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        t += rng.f64_range(0.2, 2.0);
        let dur = if rng.chance(0.25) {
            rng.f64_range(2.0, 6.0) // long episode (enables INCLUDES)
        } else {
            rng.f64_range(0.1, 1.0)
        };
        intervals.push((t, t + dur));
    }
    // Text order: mostly chronological (by start), with local disorder —
    // narratives flash back ("previously, ...").
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| intervals[a].0.partial_cmp(&intervals[b].0).expect("finite"));
    for i in 1..n {
        if rng.chance(0.22) {
            order.swap(i - 1, i);
        }
    }
    // Build events in text order with cues reflecting the relation between
    // the previous-in-text and current event.
    let rel_of = |a: usize, b: usize| -> RelationType {
        if six_way {
            relation6(intervals[a], intervals[b])
        } else {
            relation3(intervals[a], intervals[b])
        }
    };
    let mut events = Vec::with_capacity(n);
    let mut sentence = 0usize;
    for (text_pos, &ev) in order.iter().enumerate() {
        let cue = if text_pos == 0 {
            ""
        } else {
            cue_for(rng, rel_of(order[text_pos - 1], ev), noise)
        };
        if rng.chance(0.4) {
            sentence += 1;
        }
        events.push(TemporalEvent {
            surface: rng.choose(EVENT_SURFACES).to_string(),
            cue_before: cue.to_string(),
            sentence,
            interval: intervals[ev],
        });
    }
    // Pairs: I2B2-like annotates a window (distance ≤ 3); TB-Dense-like is
    // dense (all pairs).
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !six_way && j - i > 3 {
                continue;
            }
            let mut label = if six_way {
                relation6(events[i].interval, events[j].interval)
            } else {
                relation3(events[i].interval, events[j].interval)
            };
            if six_way && rng.chance(vague_rate) {
                label = RelationType::Vague;
            }
            pairs.push((i, j, label));
        }
    }
    TemporalDoc { events, pairs }
}

/// Generates the I2B2-2012-like dataset: 3 labels, windowed pairs.
pub fn i2b2_like(seed: u64, num_docs: usize) -> TemporalDataset {
    i2b2_like_with_noise(seed, num_docs, 0.35)
}

/// I2B2-like with an explicit cue-noise rate (for ablations).
pub fn i2b2_like_with_noise(seed: u64, num_docs: usize, noise: f64) -> TemporalDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let docs = (0..num_docs)
        .map(|_| {
            let mut child = rng.fork();
            generate_doc(&mut child, false, noise, 0.0)
        })
        .collect();
    TemporalDataset {
        docs,
        labels: RelationType::i2b2_labels().to_vec(),
        name: "i2b2-2012-like",
    }
}

/// Generates the TB-Dense-like dataset: 6 labels, dense pairs.
pub fn tbdense_like(seed: u64, num_docs: usize) -> TemporalDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let docs = (0..num_docs)
        .map(|_| {
            let mut child = rng.fork();
            generate_doc(&mut child, true, 0.35, 0.08)
        })
        .collect();
    TemporalDataset {
        docs,
        labels: RelationType::tbdense_labels().to_vec(),
        name: "tb-dense-like",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i2b2_labels_are_three_way() {
        let ds = i2b2_like(1, 20);
        assert_eq!(ds.labels.len(), 3);
        for d in &ds.docs {
            for &(i, j, l) in &d.pairs {
                assert!(i < j);
                assert!(ds.labels.contains(&l), "unexpected label {l}");
            }
        }
    }

    #[test]
    fn tbdense_has_all_six_labels_present() {
        let ds = tbdense_like(2, 200);
        let mut seen = std::collections::HashSet::new();
        for d in &ds.docs {
            for &(_, _, l) in &d.pairs {
                seen.insert(l);
            }
        }
        for l in RelationType::tbdense_labels() {
            assert!(seen.contains(l), "label {l} never generated");
        }
    }

    #[test]
    fn gold_is_transitively_consistent() {
        // BEFORE must be transitive over the gold pairs (excluding VAGUE).
        let ds = i2b2_like(3, 50);
        for d in &ds.docs {
            use std::collections::HashMap;
            let mut label: HashMap<(usize, usize), RelationType> = HashMap::new();
            for &(i, j, l) in &d.pairs {
                label.insert((i, j), l);
            }
            let n = d.events.len();
            for a in 0..n {
                for b in 0..n {
                    for c in 0..n {
                        let (Some(&ab), Some(&bc), Some(&ac)) =
                            (label.get(&(a, b)), label.get(&(b, c)), label.get(&(a, c)))
                        else {
                            continue;
                        };
                        if ab == RelationType::Before && bc == RelationType::Before {
                            assert_eq!(ac, RelationType::Before, "transitivity violated in gold");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cues_correlate_with_labels() {
        // With zero noise, a BEFORE-in-text-order pair's cue comes from the
        // forward-flow pool.
        let ds = i2b2_like_with_noise(5, 100, 0.0);
        let mut fwd_cue_given_before = 0usize;
        let mut before_adjacent = 0usize;
        for d in &ds.docs {
            for &(i, j, l) in &d.pairs {
                if j == i + 1 && l == RelationType::Before {
                    before_adjacent += 1;
                    if [
                        "then",
                        "later",
                        "subsequently",
                        "after which",
                        "followed by",
                    ]
                    .contains(&d.events[j].cue_before.as_str())
                    {
                        fwd_cue_given_before += 1;
                    }
                }
            }
        }
        assert!(before_adjacent > 50);
        assert_eq!(
            fwd_cue_given_before, before_adjacent,
            "noise-free cues must be faithful"
        );
    }

    #[test]
    fn noise_corrupts_cues() {
        let clean = i2b2_like_with_noise(7, 50, 0.0);
        let noisy = i2b2_like_with_noise(7, 50, 0.9);
        let faithful = |ds: &TemporalDataset| -> f64 {
            let mut ok = 0usize;
            let mut total = 0usize;
            for d in &ds.docs {
                for &(i, j, l) in &d.pairs {
                    if j == i + 1 && l == RelationType::Before {
                        total += 1;
                        if [
                            "then",
                            "later",
                            "subsequently",
                            "after which",
                            "followed by",
                        ]
                        .contains(&d.events[j].cue_before.as_str())
                        {
                            ok += 1;
                        }
                    }
                }
            }
            ok as f64 / total.max(1) as f64
        };
        assert!(faithful(&clean) > faithful(&noisy) + 0.3);
    }

    #[test]
    fn split_partitions_docs() {
        let ds = i2b2_like(9, 10);
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len() + test.len(), 10);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = tbdense_like(11, 5);
        let b = tbdense_like(11, 5);
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.pairs, y.pairs);
            assert_eq!(
                x.events.iter().map(|e| &e.surface).collect::<Vec<_>>(),
                y.events.iter().map(|e| &e.surface).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn text_order_mostly_chronological() {
        let ds = i2b2_like(13, 50);
        let mut before = 0usize;
        let mut after = 0usize;
        for d in &ds.docs {
            for &(_, _, l) in &d.pairs {
                match l {
                    RelationType::Before => before += 1,
                    RelationType::After => after += 1,
                    _ => {}
                }
            }
        }
        assert!(before > after, "narratives should flow mostly forward");
        assert!(after > 0, "some flashbacks must exist");
    }
}
