//! The retrieval workload: queries with graded gold relevance.
//!
//! Experiment E4 (CREATe-IR vs Solr) needs queries *and* judgments. Queries
//! are generated from target reports so that relevance is known exactly:
//!
//! * grade 2 (High): the report contains **all** queried concepts and, for
//!   temporal queries, a pair of mentions whose timeline relation matches
//!   the queried relation;
//! * grade 1 (Partial): the report contains all queried concepts but not
//!   the temporal pattern (or the query has no temporal pattern and the
//!   match is via synonyms only — still all concepts present).
//!
//! Four families mirror the system's search modes (Section III-D): keyword,
//! entity, relation, temporal.

use crate::report::CaseReport;
use create_ontology::{ConceptId, RelationType};
use create_util::Rng;
use std::collections::HashMap;

/// Which search mode a query exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFamily {
    /// Free-text keyword bag (what Solr handles well).
    Keyword,
    /// One or two normalized clinical concepts.
    Entity,
    /// Concepts plus an OVERLAP co-occurrence requirement.
    Relation,
    /// Concepts plus an explicit BEFORE/AFTER temporal pattern.
    Temporal,
}

impl QueryFamily {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            QueryFamily::Keyword => "keyword",
            QueryFamily::Entity => "entity",
            QueryFamily::Relation => "relation",
            QueryFamily::Temporal => "temporal",
        }
    }
}

/// Graded relevance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelevanceGrade {
    /// All concepts present.
    Partial = 1,
    /// All concepts present and temporal/relational pattern matched.
    High = 2,
}

impl RelevanceGrade {
    /// Numeric gain used by nDCG.
    pub fn gain(&self) -> f64 {
        *self as u8 as f64
    }
}

/// A generated query with gold judgments.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Natural-language query text.
    pub text: String,
    /// Family.
    pub family: QueryFamily,
    /// The concepts the query requires.
    pub concepts: Vec<ConceptId>,
    /// Temporal pattern `(earlier concept, later concept, relation)`, for
    /// Relation/Temporal families.
    pub pattern: Option<(ConceptId, ConceptId, RelationType)>,
    /// report id → grade; absent ids are grade 0.
    pub judgments: HashMap<String, RelevanceGrade>,
}

/// A full query workload.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Queries in generation order.
    pub queries: Vec<GeneratedQuery>,
}

impl QuerySet {
    /// Generates `n` queries against `corpus`, cycling through the four
    /// families.
    pub fn generate(corpus: &[CaseReport], seed: u64, n: usize) -> QuerySet {
        assert!(!corpus.is_empty(), "query generation needs a corpus");
        let mut rng = Rng::seed_from_u64(seed);
        let families = [
            QueryFamily::Keyword,
            QueryFamily::Entity,
            QueryFamily::Relation,
            QueryFamily::Temporal,
        ];
        let mut queries = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while queries.len() < n && attempts < n * 50 {
            attempts += 1;
            let family = families[queries.len() % families.len()];
            let target = rng.choose(corpus);
            if let Some(q) = build_query(&mut rng, corpus, target, family) {
                if !q.judgments.is_empty() {
                    queries.push(q);
                }
            }
        }
        QuerySet { queries }
    }

    /// Queries of one family.
    pub fn of_family(&self, family: QueryFamily) -> Vec<&GeneratedQuery> {
        self.queries.iter().filter(|q| q.family == family).collect()
    }
}

/// Picks up to `k` distinct event concepts from a report (symptoms,
/// diseases, medications — the concept kinds users query by).
fn pick_concepts(rng: &mut Rng, report: &CaseReport, k: usize) -> Vec<(usize, ConceptId, String)> {
    use create_ontology::EntityType;
    // Lab values are excluded: their gold surfaces embed numeric readings
    // ("troponin of 3.5 ng/mL"), which no user would type verbatim.
    let queryable = |t: EntityType| {
        matches!(
            t,
            EntityType::SignSymptom
                | EntityType::DiseaseDisorder
                | EntityType::Medication
                | EntityType::DiagnosticProcedure
                | EntityType::TherapeuticProcedure
                | EntityType::Outcome
        )
    };
    let mut candidates: Vec<(usize, ConceptId, String)> = report
        .entities
        .iter()
        .enumerate()
        .filter(|(_, e)| queryable(e.etype) && e.concept.is_some() && e.time_step.is_some())
        .map(|(i, e)| (i, e.concept.expect("filtered"), e.text.clone()))
        .collect();
    // Distinct by concept.
    candidates.sort_by_key(|(_, c, _)| *c);
    candidates.dedup_by_key(|(_, c, _)| *c);
    rng.shuffle(&mut candidates);
    candidates.truncate(k);
    candidates
}

fn build_query(
    rng: &mut Rng,
    corpus: &[CaseReport],
    target: &CaseReport,
    family: QueryFamily,
) -> Option<GeneratedQuery> {
    match family {
        QueryFamily::Keyword => {
            let picks = pick_concepts(rng, target, 2);
            if picks.is_empty() {
                return None;
            }
            let words: Vec<String> = picks.iter().map(|(_, _, t)| t.clone()).collect();
            let concepts: Vec<ConceptId> = picks.iter().map(|(_, c, _)| *c).collect();
            let text = words.join(" ");
            Some(finish(corpus, text, family, concepts, None))
        }
        QueryFamily::Entity => {
            let picks = pick_concepts(rng, target, 2);
            if picks.len() < 2 {
                return None;
            }
            let text = format!("case reports describing {} with {}", picks[0].2, picks[1].2);
            let concepts = vec![picks[0].1, picks[1].1];
            Some(finish(corpus, text, family, concepts, None))
        }
        QueryFamily::Relation => {
            // Two concepts required to co-occur (OVERLAP — same step).
            let pair = overlap_pair(rng, target)?;
            let text = format!(
                "A patient was admitted to the hospital because of {} and {}.",
                pair.0 .1, pair.1 .1
            );
            let concepts = vec![pair.0 .0, pair.1 .0];
            let pattern = Some((pair.0 .0, pair.1 .0, RelationType::Overlap));
            Some(finish(corpus, text, family, concepts, pattern))
        }
        QueryFamily::Temporal => {
            let pair = before_pair(rng, target)?;
            let templates = [
                format!("{} before {}", pair.0 .1, pair.1 .1),
                format!("patients who developed {} after {}", pair.1 .1, pair.0 .1),
                format!(
                    "A patient had {} and later developed {}.",
                    pair.0 .1, pair.1 .1
                ),
            ];
            let text = rng.choose(&templates).clone();
            let concepts = vec![pair.0 .0, pair.1 .0];
            let pattern = Some((pair.0 .0, pair.1 .0, RelationType::Before));
            Some(finish(corpus, text, family, concepts, pattern))
        }
    }
}

type ConceptPick = (ConceptId, String);

/// Finds two same-step event concepts in the report.
fn overlap_pair(rng: &mut Rng, report: &CaseReport) -> Option<(ConceptPick, ConceptPick)> {
    let picks = pick_concepts(rng, report, 6);
    for a in 0..picks.len() {
        for b in (a + 1)..picks.len() {
            let (ia, ca, ref ta) = picks[a];
            let (ib, cb, ref tb) = picks[b];
            if report.timeline_relation(ia, ib) == Some(RelationType::Overlap) && ca != cb {
                return Some(((ca, ta.clone()), (cb, tb.clone())));
            }
        }
    }
    None
}

/// Finds an (earlier, later) event concept pair.
fn before_pair(rng: &mut Rng, report: &CaseReport) -> Option<(ConceptPick, ConceptPick)> {
    let picks = pick_concepts(rng, report, 6);
    for a in 0..picks.len() {
        for b in 0..picks.len() {
            if a == b {
                continue;
            }
            let (ia, ca, ref ta) = picks[a];
            let (ib, cb, ref tb) = picks[b];
            if report.timeline_relation(ia, ib) == Some(RelationType::Before) && ca != cb {
                return Some(((ca, ta.clone()), (cb, tb.clone())));
            }
        }
    }
    None
}

/// Computes judgments over the whole corpus and assembles the query.
fn finish(
    corpus: &[CaseReport],
    text: String,
    family: QueryFamily,
    concepts: Vec<ConceptId>,
    pattern: Option<(ConceptId, ConceptId, RelationType)>,
) -> GeneratedQuery {
    let mut judgments = HashMap::new();
    for report in corpus {
        let has_all = concepts
            .iter()
            .all(|c| report.entities.iter().any(|e| e.concept == Some(*c)));
        if !has_all {
            continue;
        }
        let grade = match pattern {
            Some((c1, c2, rel)) => {
                if pattern_matches(report, c1, c2, rel) {
                    RelevanceGrade::High
                } else {
                    RelevanceGrade::Partial
                }
            }
            None => RelevanceGrade::High,
        };
        judgments.insert(report.id.clone(), grade);
    }
    GeneratedQuery {
        text,
        family,
        concepts,
        pattern,
        judgments,
    }
}

/// True when some mention pair with the given concepts stands in `rel` on
/// the report's timeline.
pub fn pattern_matches(
    report: &CaseReport,
    c1: ConceptId,
    c2: ConceptId,
    rel: RelationType,
) -> bool {
    let of = |c: ConceptId| -> Vec<usize> {
        report
            .entities
            .iter()
            .enumerate()
            .filter(|(_, e)| e.concept == Some(c))
            .map(|(i, _)| i)
            .collect()
    };
    for &a in &of(c1) {
        for &b in &of(c2) {
            if report.timeline_relation(a, b) == Some(rel) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, Generator};

    fn corpus() -> Vec<CaseReport> {
        Generator::new(CorpusConfig {
            num_reports: 120,
            seed: 21,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn generates_requested_count() {
        let c = corpus();
        let qs = QuerySet::generate(&c, 1, 40);
        assert_eq!(qs.queries.len(), 40);
    }

    #[test]
    fn all_families_appear() {
        let c = corpus();
        let qs = QuerySet::generate(&c, 2, 40);
        for f in [
            QueryFamily::Keyword,
            QueryFamily::Entity,
            QueryFamily::Relation,
            QueryFamily::Temporal,
        ] {
            assert!(!qs.of_family(f).is_empty(), "missing family {}", f.label());
        }
    }

    #[test]
    fn every_query_has_relevant_docs() {
        let c = corpus();
        let qs = QuerySet::generate(&c, 3, 30);
        for q in &qs.queries {
            assert!(!q.judgments.is_empty(), "query {:?} unjudged", q.text);
        }
    }

    #[test]
    fn temporal_queries_have_high_and_only_valid_grades() {
        let c = corpus();
        let qs = QuerySet::generate(&c, 4, 40);
        for q in qs.of_family(QueryFamily::Temporal) {
            // The target report matched the pattern, so at least one High.
            assert!(
                q.judgments.values().any(|g| *g == RelevanceGrade::High),
                "temporal query without a High judgment: {:?}",
                q.text
            );
            let (c1, c2, rel) = q.pattern.expect("temporal queries carry a pattern");
            for (id, grade) in &q.judgments {
                let report = c.iter().find(|r| &r.id == id).expect("judged id exists");
                let matched = pattern_matches(report, c1, c2, rel);
                assert_eq!(
                    *grade == RelevanceGrade::High,
                    matched,
                    "grade/pattern mismatch on {id}"
                );
            }
        }
    }

    #[test]
    fn judgments_require_all_concepts() {
        let c = corpus();
        let qs = QuerySet::generate(&c, 5, 20);
        for q in &qs.queries {
            for id in q.judgments.keys() {
                let report = c.iter().find(|r| &r.id == id).expect("exists");
                for concept in &q.concepts {
                    assert!(
                        report.entities.iter().any(|e| e.concept == Some(*concept)),
                        "judged doc {id} missing concept {concept}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let a = QuerySet::generate(&c, 6, 12);
        let b = QuerySet::generate(&c, 6, 12);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn grades_order() {
        assert!(RelevanceGrade::High > RelevanceGrade::Partial);
        assert_eq!(RelevanceGrade::High.gain(), 2.0);
        assert_eq!(RelevanceGrade::Partial.gain(), 1.0);
    }
}
