//! The annotated case-report data model.

use create_ontology::{CaseCategory, ConceptId, EntityType, RelationType};
use create_text::Span;

/// A gold-standard entity/event mention.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldEntity {
    /// Byte span into [`CaseReport::text`].
    pub span: Span,
    /// Surface text (redundant with the span; kept for convenience).
    pub text: String,
    /// Schema type.
    pub etype: EntityType,
    /// Normalized ontology concept, when the mention maps to one.
    pub concept: Option<ConceptId>,
    /// Chronological step of the event on the latent timeline; `None` for
    /// non-temporal ENTITY mentions (ages, severities, …). Step 0 is the
    /// patient's pre-admission history.
    pub time_step: Option<u32>,
}

/// A gold-standard relation between two mentions (indices into
/// [`CaseReport::entities`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldRelation {
    /// Source entity index.
    pub source: usize,
    /// Target entity index.
    pub target: usize,
    /// Relation label.
    pub rtype: RelationType,
}

/// PubMed-like bibliographic metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportMetadata {
    /// "Last FM" style author names.
    pub authors: Vec<String>,
    /// Journal name.
    pub journal: String,
    /// Publication year.
    pub year: u32,
    /// MeSH-ish subject terms.
    pub mesh_terms: Vec<String>,
}

/// A fully annotated synthetic case report.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Stable identifier (`pmid:<n>` for "literature" reports,
    /// `user:<n>` for simulated user submissions).
    pub id: String,
    /// Report title.
    pub title: String,
    /// Disease category (drives the Fig-1 distribution).
    pub category: CaseCategory,
    /// Bibliographic metadata.
    pub metadata: ReportMetadata,
    /// The narrative text.
    pub text: String,
    /// Gold mentions, ordered by span start.
    pub entities: Vec<GoldEntity>,
    /// Gold relations between mentions.
    pub relations: Vec<GoldRelation>,
}

impl CaseReport {
    /// Entities of a given type.
    pub fn entities_of(&self, t: EntityType) -> impl Iterator<Item = (usize, &GoldEntity)> {
        self.entities
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.etype == t)
    }

    /// EVENT mentions with their timeline steps, in index order.
    pub fn events(&self) -> impl Iterator<Item = (usize, &GoldEntity)> {
        self.entities
            .iter()
            .enumerate()
            .filter(|(_, e)| e.etype.is_event() && e.time_step.is_some())
    }

    /// Gold temporal relation between two events derived from the latent
    /// timeline: same step → OVERLAP, earlier step → BEFORE, later → AFTER.
    /// `None` when either mention has no timeline position.
    pub fn timeline_relation(&self, a: usize, b: usize) -> Option<RelationType> {
        let sa = self.entities.get(a)?.time_step?;
        let sb = self.entities.get(b)?.time_step?;
        Some(match sa.cmp(&sb) {
            std::cmp::Ordering::Less => RelationType::Before,
            std::cmp::Ordering::Greater => RelationType::After,
            std::cmp::Ordering::Equal => RelationType::Overlap,
        })
    }

    /// Verifies internal consistency; used by generator tests and
    /// proptests. Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.entities.iter().enumerate() {
            if e.span.end > self.text.len() {
                return Err(format!("entity {i} span {} out of bounds", e.span));
            }
            if !self.text.is_char_boundary(e.span.start) || !self.text.is_char_boundary(e.span.end)
            {
                return Err(format!("entity {i} span {} splits a char", e.span));
            }
            if e.span.slice(&self.text) != e.text {
                return Err(format!(
                    "entity {i} text mismatch: span has {:?}, field has {:?}",
                    e.span.slice(&self.text),
                    e.text
                ));
            }
        }
        for w in self.entities.windows(2) {
            if w[1].span.start < w[0].span.start {
                return Err("entities not ordered by span start".to_string());
            }
        }
        for (i, r) in self.relations.iter().enumerate() {
            if r.source >= self.entities.len() || r.target >= self.entities.len() {
                return Err(format!("relation {i} references missing entity"));
            }
            if r.source == r.target {
                return Err(format!("relation {i} is reflexive"));
            }
            // Temporal gold labels must agree with the latent timeline.
            if r.rtype.is_temporal() && r.rtype != RelationType::Vague {
                if let Some(expected) = self.timeline_relation(r.source, r.target) {
                    if expected != r.rtype {
                        return Err(format!(
                            "relation {i} ({}) contradicts timeline ({expected})",
                            r.rtype
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> CaseReport {
        let text = "Fever began. Cough followed.".to_string();
        CaseReport {
            id: "pmid:1".into(),
            title: "test".into(),
            category: CaseCategory::Other,
            metadata: ReportMetadata {
                authors: vec!["Smith J".into()],
                journal: "J Test".into(),
                year: 2020,
                mesh_terms: vec![],
            },
            entities: vec![
                GoldEntity {
                    span: Span::new(0, 5),
                    text: "Fever".into(),
                    etype: EntityType::SignSymptom,
                    concept: None,
                    time_step: Some(1),
                },
                GoldEntity {
                    span: Span::new(13, 18),
                    text: "Cough".into(),
                    etype: EntityType::SignSymptom,
                    concept: None,
                    time_step: Some(2),
                },
            ],
            relations: vec![GoldRelation {
                source: 0,
                target: 1,
                rtype: RelationType::Before,
            }],
            text,
        }
    }

    #[test]
    fn valid_report_passes() {
        assert_eq!(tiny_report().validate(), Ok(()));
    }

    #[test]
    fn timeline_relation_derivation() {
        let r = tiny_report();
        assert_eq!(r.timeline_relation(0, 1), Some(RelationType::Before));
        assert_eq!(r.timeline_relation(1, 0), Some(RelationType::After));
        assert_eq!(r.timeline_relation(0, 0), Some(RelationType::Overlap));
    }

    #[test]
    fn validate_catches_span_mismatch() {
        let mut r = tiny_report();
        r.entities[0].text = "Wrong".into();
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_relation_target() {
        let mut r = tiny_report();
        r.relations.push(GoldRelation {
            source: 0,
            target: 99,
            rtype: RelationType::Overlap,
        });
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_catches_timeline_contradiction() {
        let mut r = tiny_report();
        r.relations[0].rtype = RelationType::After; // timeline says Before
        assert!(r.validate().unwrap_err().contains("contradicts timeline"));
    }

    #[test]
    fn events_iterator_filters() {
        let r = tiny_report();
        assert_eq!(r.events().count(), 2);
        assert_eq!(r.entities_of(EntityType::SignSymptom).count(), 2);
        assert_eq!(r.entities_of(EntityType::Medication).count(), 0);
    }
}
