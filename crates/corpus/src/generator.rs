//! The case-report generator.
//!
//! Produces [`CaseReport`]s whose narratives follow the canonical clinical
//! course (presentation → history → diagnostics → diagnosis → treatment →
//! course → outcome) over a latent timeline of integer steps. Entity spans,
//! semantic relations (MODIFY, IDENTICAL), and timeline-consistent temporal
//! relations (BEFORE/AFTER/OVERLAP) are produced alongside the text.
//!
//! The category mix defaults to the Fig-1 calibration (cancer largest, CVD
//! ≈ 20% split over the six areas of Section III-A).

use crate::narrative::{capitalize, count_phrase, NarrativeBuilder};
use crate::report::{CaseReport, GoldRelation, ReportMetadata};
use create_ontology::{
    clinical_ontology, lexicon, CaseCategory, Concept, EntityType, Ontology, RelationType,
};
use create_util::Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of reports to generate.
    pub num_reports: usize,
    /// Fraction of reports marked as user submissions (`user:` ids) rather
    /// than literature (`pmid:` ids).
    pub user_submission_rate: f64,
    /// Probability that an entity surface receives a single-character typo
    /// (models OCR/user noise; used by the "noisy" NER dataset).
    pub typo_rate: f64,
    /// Category mix; defaults to [`CaseCategory::weighted_mix`].
    pub category_mix: Vec<(CaseCategory, f64)>,
    /// When set, restrict generation to these categories (reweighted); used
    /// for the cardio-only NER dataset.
    pub category_filter: Option<Vec<CaseCategory>>,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            num_reports: 100,
            user_submission_rate: 0.05,
            typo_rate: 0.0,
            category_mix: CaseCategory::weighted_mix(),
            category_filter: None,
        }
    }
}

/// Vocabulary slices materialized from the ontology for fast sampling.
#[derive(Debug)]
struct Vocab {
    symptoms: Vec<Concept>,
    medications: Vec<Concept>,
    diagnostics: Vec<Concept>,
    therapeutics: Vec<Concept>,
    locations: Vec<Concept>,
    occupations: Vec<Concept>,
    severities: Vec<Concept>,
    outcomes: Vec<Concept>,
    labs: Vec<Concept>,
}

/// The case-report generator. Holds the ontology and sampling tables.
///
/// ```
/// use create_corpus::{CorpusConfig, Generator};
/// let reports = Generator::new(CorpusConfig { num_reports: 2, seed: 7, ..Default::default() })
///     .generate();
/// assert_eq!(reports.len(), 2);
/// assert!(reports[0].validate().is_ok());
/// ```
#[derive(Debug)]
pub struct Generator {
    config: CorpusConfig,
    ontology: Ontology,
    vocab: Vocab,
}

const SURNAMES: &[&str] = &[
    "Smith", "Chen", "Garcia", "Johnson", "Kim", "Patel", "Müller", "Rossi", "Tanaka", "Nguyen",
    "Kowalski", "Okafor", "Silva", "Ivanov", "Haddad", "Lindgren", "Novak", "Costa", "Yamamoto",
    "Olsen", "Dubois", "Moreau", "Ricci", "Sato", "Khan", "Ali", "Park", "Lee", "Wang", "Zhang",
];

const INITIALS: &[&str] = &[
    "A", "B", "C", "D", "E", "F", "G", "H", "J", "K", "L", "M", "N", "P", "R", "S", "T", "W", "Y",
];

const JOURNALS: &[&str] = &[
    "Journal of Medical Case Reports",
    "BMC Cardiovascular Disorders",
    "Case Reports in Cardiology",
    "European Heart Journal Case Reports",
    "Clinical Case Reports",
    "American Journal of Case Reports",
    "Oxford Medical Case Reports",
    "BMJ Case Reports",
    "Journal of Cardiology Cases",
    "Respiratory Medicine Case Reports",
];

/// Preferred presenting symptoms per coarse category (mixed 70/30 with
/// random draws for variety).
fn preferred_symptoms(cat: CaseCategory) -> &'static [&'static str] {
    match cat.coarse_label() {
        "cardiovascular" => &[
            "chest pain",
            "dyspnea",
            "palpitations",
            "syncope",
            "edema",
            "fatigue",
            "diaphoresis",
            "orthopnea",
        ],
        "cancer" => &[
            "weight loss",
            "fatigue",
            "lymphadenopathy",
            "anorexia",
            "bruising",
        ],
        "infectious" => &[
            "fever",
            "cough",
            "chills",
            "malaise",
            "sore throat",
            "rhinorrhea",
        ],
        "neurological" => &[
            "headache",
            "seizure",
            "hemiparesis",
            "aphasia",
            "dizziness",
            "tremor",
            "confusion",
        ],
        "respiratory" => &["dyspnea", "cough", "wheezing", "hemoptysis", "stridor"],
        "gastrointestinal" => &[
            "abdominal pain",
            "nausea",
            "vomiting",
            "diarrhea",
            "jaundice",
            "melena",
        ],
        "endocrine" => &["fatigue", "polyuria", "polydipsia", "weight loss"],
        "renal" => &["oliguria", "edema", "hematuria", "fatigue"],
        _ => &["fatigue", "fever", "malaise", "arthralgia", "rash"],
    }
}

fn lab_unit(analyte: &str) -> &'static str {
    match analyte {
        "troponin" => "ng/mL",
        "creatine kinase" => "U/L",
        "b-type natriuretic peptide" => "pg/mL",
        "creatinine" => "mg/dL",
        "hemoglobin" => "g/dL",
        "white blood cell count" => "x10^9/L",
        "platelet count" => "x10^9/L",
        "c-reactive protein" => "mg/L",
        "erythrocyte sedimentation rate" => "mm/hr",
        "d-dimer" => "µg/mL",
        "lactate" => "mmol/L",
        "glucose" => "mg/dL",
        "hemoglobin a1c" => "%",
        "thyroid stimulating hormone" => "mIU/L",
        "potassium" => "mmol/L",
        "sodium" => "mmol/L",
        "alanine aminotransferase" => "U/L",
        "aspartate aminotransferase" => "U/L",
        "bilirubin" => "mg/dL",
        "ejection fraction" => "%",
        _ => "units",
    }
}

impl Generator {
    /// Creates a generator over the built-in clinical ontology.
    pub fn new(config: CorpusConfig) -> Generator {
        let ontology = clinical_ontology();
        let slice = |t: EntityType| -> Vec<Concept> {
            let mut v: Vec<Concept> = ontology.of_type(t).cloned().collect();
            v.sort_by_key(|c| c.id);
            v
        };
        let vocab = Vocab {
            symptoms: slice(EntityType::SignSymptom),
            medications: slice(EntityType::Medication),
            diagnostics: slice(EntityType::DiagnosticProcedure),
            therapeutics: slice(EntityType::TherapeuticProcedure),
            locations: slice(EntityType::NonbiologicalLocation),
            occupations: slice(EntityType::Occupation),
            severities: slice(EntityType::Severity),
            outcomes: slice(EntityType::Outcome),
            labs: slice(EntityType::LabValue),
        };
        Generator {
            config,
            ontology,
            vocab,
        }
    }

    /// Shared ontology reference.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Generates the full corpus.
    pub fn generate(&self) -> Vec<CaseReport> {
        let mut rng = Rng::seed_from_u64(self.config.seed);
        (0..self.config.num_reports)
            .map(|i| {
                let mut child = rng.fork();
                self.generate_one(&mut child, i)
            })
            .collect()
    }

    fn pick_category(&self, rng: &mut Rng) -> CaseCategory {
        let mix: Vec<(CaseCategory, f64)> = match &self.config.category_filter {
            Some(allowed) => self
                .config
                .category_mix
                .iter()
                .filter(|(c, _)| allowed.contains(c))
                .cloned()
                .collect(),
            None => self.config.category_mix.clone(),
        };
        assert!(!mix.is_empty(), "category filter excluded everything");
        let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
        mix[rng.choose_weighted(&weights)].0
    }

    /// Picks a symptom concept, biased toward the category's presentation.
    fn pick_symptom(&self, rng: &mut Rng, cat: CaseCategory, exclude: &[u32]) -> Concept {
        for _ in 0..16 {
            let c = if rng.chance(0.7) {
                let name = rng.choose(preferred_symptoms(cat));
                self.ontology
                    .lookup(name)
                    .unwrap_or_else(|| panic!("preferred symptom {name} missing from lexicon"))
                    .clone()
            } else {
                rng.choose(&self.vocab.symptoms).clone()
            };
            if !exclude.contains(&c.id.0) {
                return c;
            }
        }
        rng.choose(&self.vocab.symptoms).clone()
    }

    /// Picks a surface string for a concept (preferred name or synonym),
    /// optionally injecting a typo.
    fn surface(&self, rng: &mut Rng, c: &Concept) -> String {
        let s = if !c.synonyms.is_empty() && rng.chance(0.3) {
            rng.choose(&c.synonyms).clone()
        } else {
            c.preferred.clone()
        };
        if self.config.typo_rate > 0.0 && rng.chance(self.config.typo_rate) {
            inject_typo(rng, &s)
        } else {
            s
        }
    }

    /// Generates one report. The per-report RNG makes reports independent:
    /// report `i` is identical no matter how many others are generated.
    pub fn generate_one(&self, rng: &mut Rng, index: usize) -> CaseReport {
        let category = self.pick_category(rng);
        let diseases = lexicon::diseases_for(category);
        let disease_name = *rng.choose(&diseases);
        let disease = self
            .ontology
            .lookup(disease_name)
            .expect("lexicon disease must be in ontology")
            .clone();

        let age = rng.range(18, 92);
        let (sex_word, subj, poss) = *rng.choose(&[
            ("woman", "she", "her"),
            ("man", "he", "his"),
            ("female", "she", "her"),
            ("male", "he", "his"),
        ]);

        let mut b = NarrativeBuilder::new();
        let mut relations: Vec<GoldRelation> = Vec::new();
        // Events per timeline step, for temporal relation emission.
        let mut steps: Vec<Vec<usize>> = Vec::new();
        let step_events = |steps: &mut Vec<Vec<usize>>, step: u32, idx: usize| {
            while steps.len() <= step as usize {
                steps.push(Vec::new());
            }
            steps[step as usize].push(idx);
        };

        // ---- Presentation (timeline step 1) ----
        b.text("A ");
        b.entity(&format!("{age}-year-old"), EntityType::Age, None, None);
        b.text(" ");
        b.entity(sex_word, EntityType::Sex, None, None);
        if rng.chance(0.35) {
            let occ = rng.choose(&self.vocab.occupations).clone();
            b.text(", a ");
            let surface = self.surface(rng, &occ);
            b.entity(&surface, EntityType::Occupation, Some(occ.id), None);
            b.text(",");
        }
        let admission_verb = *rng.choose(&[
            "presented to",
            "was admitted to",
            "was brought to",
            "was referred to",
        ]);
        b.text(&format!(" {admission_verb} the "));
        let loc = rng.choose(&self.vocab.locations).clone();
        let loc_surface = self.surface(rng, &loc);
        let _loc_idx = b.entity(
            &loc_surface,
            EntityType::NonbiologicalLocation,
            Some(loc.id),
            None,
        );
        b.text(" with ");

        let n_symptoms = rng.count_geometric(0.55, 3);
        let mut symptom_ids: Vec<u32> = Vec::new();
        let mut presenting: Vec<usize> = Vec::new();
        let mut first_symptom_concept: Option<Concept> = None;
        for k in 0..n_symptoms {
            if k > 0 {
                b.text(if k + 1 == n_symptoms { " and " } else { ", " });
            }
            // Optional severity modifier.
            let mut severity_idx = None;
            if rng.chance(0.4) {
                let sev = rng.choose(&self.vocab.severities).clone();
                let surface = self.surface(rng, &sev);
                severity_idx = Some(b.entity(&surface, EntityType::Severity, Some(sev.id), None));
                b.text(" ");
            }
            let sym = self.pick_symptom(rng, category, &symptom_ids);
            symptom_ids.push(sym.id.0);
            let surface = self.surface(rng, &sym);
            let idx = b.entity(&surface, EntityType::SignSymptom, Some(sym.id), Some(1));
            if first_symptom_concept.is_none() {
                first_symptom_concept = Some(sym.clone());
            }
            presenting.push(idx);
            step_events(&mut steps, 1, idx);
            if let Some(sev_idx) = severity_idx {
                relations.push(GoldRelation {
                    source: sev_idx,
                    target: idx,
                    rtype: RelationType::Modify,
                });
            }
        }
        let duration_phrase = *rng.choose(&[
            "for the past two days",
            "for one week",
            "of three days' duration",
            "since the previous evening",
        ]);
        if rng.chance(0.5) {
            b.text(" ");
            b.entity(duration_phrase, EntityType::Duration, None, None);
        }
        b.text(". ");

        // ---- History (timeline step 0) ----
        if rng.chance(0.8) {
            let opener = *rng.choose(&[
                "had a history of",
                "had been diagnosed years earlier with",
                "reported long-term use of",
                "had a known history of",
            ]);
            b.text(&format!("{} {opener} ", capitalize(subj)));
            let hist_idx = if opener.contains("use of") {
                let med = rng.choose(&self.vocab.medications).clone();
                let surface = self.surface(rng, &med);
                b.entity(&surface, EntityType::Medication, Some(med.id), Some(0))
            } else {
                // A different disease as history.
                let hist_category = self.pick_category(rng);
                let mut hist_disease = rng
                    .choose(&lexicon::diseases_for(hist_category))
                    .to_string();
                if hist_disease == disease.preferred {
                    hist_disease = "hypertension symptoms".to_string();
                }
                let concept = self.ontology.lookup(&hist_disease).map(|c| c.id);
                b.entity(&hist_disease, EntityType::DiseaseDisorder, concept, Some(0))
            };
            step_events(&mut steps, 0, hist_idx);
            b.text(". ");
        }

        // ---- Diagnostics (timeline step 2) ----
        let n_diag = rng.range(1, 3);
        for _ in 0..n_diag {
            let proc = rng.choose(&self.vocab.diagnostics).clone();
            let proc_surface = self.surface(rng, &proc);
            let template = rng.below(3);
            match template {
                0 => {
                    let cap = capitalize(&proc_surface);
                    let p_idx = b.entity(
                        &cap,
                        EntityType::DiagnosticProcedure,
                        Some(proc.id),
                        Some(2),
                    );
                    step_events(&mut steps, 2, p_idx);
                    b.text(&format!(
                        " {} ",
                        rng.choose(&["revealed", "demonstrated", "showed", "was notable for"])
                    ));
                    let finding = self.pick_symptom(rng, category, &symptom_ids);
                    let fsurface = self.surface(rng, &finding);
                    let f_idx = b.entity(
                        &fsurface,
                        EntityType::SignSymptom,
                        Some(finding.id),
                        Some(2),
                    );
                    step_events(&mut steps, 2, f_idx);
                    b.text(". ");
                }
                1 => {
                    b.text("On arrival, ");
                    let p_idx = b.entity(
                        &proc_surface,
                        EntityType::DiagnosticProcedure,
                        Some(proc.id),
                        Some(2),
                    );
                    step_events(&mut steps, 2, p_idx);
                    b.text(" was performed. ");
                }
                _ => {
                    b.text("Laboratory testing showed a ");
                    let lab = rng.choose(&self.vocab.labs).clone();
                    let value = format!(
                        "{} of {:.1} {}",
                        lab.preferred,
                        rng.f64_range(0.5, 60.0),
                        lab_unit(&lab.preferred)
                    );
                    let l_idx = b.entity(&value, EntityType::LabValue, Some(lab.id), Some(2));
                    step_events(&mut steps, 2, l_idx);
                    b.text(". ");
                }
            }
        }

        // ---- Diagnosis (timeline step 3) ----
        let disease_surface = self.surface(rng, &disease);
        let diag_template = rng.below(3);
        let d_idx = match diag_template {
            0 => {
                b.text("A diagnosis of ");
                let idx = b.entity(
                    &disease_surface,
                    EntityType::DiseaseDisorder,
                    Some(disease.id),
                    Some(3),
                );
                b.text(" was made. ");
                idx
            }
            1 => {
                b.text(&format!("{} was confirmed with ", capitalize(subj)));
                let idx = b.entity(
                    &disease_surface,
                    EntityType::DiseaseDisorder,
                    Some(disease.id),
                    Some(3),
                );
                b.text(". ");
                idx
            }
            _ => {
                b.text("These findings were consistent with ");
                let idx = b.entity(
                    &disease_surface,
                    EntityType::DiseaseDisorder,
                    Some(disease.id),
                    Some(3),
                );
                b.text(". ");
                idx
            }
        };
        step_events(&mut steps, 3, d_idx);

        // ---- Treatment (timeline step 4) ----
        let mut anaphor_source: Option<usize> = None;
        if rng.chance(0.85) {
            if rng.chance(0.6) {
                let med = rng.choose(&self.vocab.medications).clone();
                let med_surface = self.surface(rng, &med);
                b.text(&format!(
                    "The patient was {} ",
                    rng.choose(&["started on", "treated with", "given", "commenced on"])
                ));
                let m_idx = b.entity(&med_surface, EntityType::Medication, Some(med.id), Some(4));
                step_events(&mut steps, 4, m_idx);
                if rng.chance(0.6) {
                    b.text(" ");
                    let dose = format!(
                        "{} mg {}",
                        [5, 10, 20, 25, 40, 50, 75, 100, 200, 500][rng.below(10)],
                        rng.choose(&["daily", "twice daily", "every 8 hours", "at bedtime"])
                    );
                    let dose_idx = b.entity(&dose, EntityType::Dosage, None, None);
                    relations.push(GoldRelation {
                        source: dose_idx,
                        target: m_idx,
                        rtype: RelationType::Modify,
                    });
                }
                // Optional coreference back to the first presenting symptom.
                if let (Some(first), true) = (first_symptom_concept.as_ref(), rng.chance(0.5)) {
                    b.text(" to control the ");
                    let ana_idx = b.entity(
                        &first.preferred,
                        EntityType::SignSymptom,
                        Some(first.id),
                        Some(1),
                    );
                    relations.push(GoldRelation {
                        source: ana_idx,
                        target: presenting[0],
                        rtype: RelationType::Identical,
                    });
                    anaphor_source = Some(ana_idx);
                }
                b.text(". ");
            } else {
                let proc = rng.choose(&self.vocab.therapeutics).clone();
                let proc_surface = capitalize(&self.surface(rng, &proc));
                let p_idx = b.entity(
                    &proc_surface,
                    EntityType::TherapeuticProcedure,
                    Some(proc.id),
                    Some(4),
                );
                step_events(&mut steps, 4, p_idx);
                b.text(&format!(
                    " was {}. ",
                    rng.choose(&["performed", "undertaken", "carried out"])
                ));
            }
        }
        let _ = anaphor_source;

        // ---- Clinical course (timeline steps 5..) ----
        let mut step = 5u32;
        let n_course = rng.below(3);
        for _ in 0..n_course {
            let cue = *rng.choose(&[
                "A day later",
                "Two days later",
                "On hospital day three",
                "The following week",
                "Shortly afterwards",
            ]);
            let t_idx = b.entity(cue, EntityType::Time, None, Some(step));
            step_events(&mut steps, step, t_idx);
            b.text(&format!(
                ", {subj} {} ",
                rng.choose(&["developed", "began to have", "experienced"])
            ));
            let sym = self.pick_symptom(rng, category, &symptom_ids);
            symptom_ids.push(sym.id.0);
            let surface = self.surface(rng, &sym);
            let s_idx = b.entity(&surface, EntityType::SignSymptom, Some(sym.id), Some(step));
            step_events(&mut steps, step, s_idx);
            b.text(". ");
            step += 1;
        }

        // ---- Outcome (final step) ----
        let outcome = rng.choose(&self.vocab.outcomes).clone();
        let outcome_surface = self.surface(rng, &outcome);
        b.text(&format!(
            "After {} weeks of treatment, the patient was ",
            count_phrase(rng.range(1, 5) as u32)
        ));
        let o_idx = b.entity(
            &outcome_surface,
            EntityType::Outcome,
            Some(outcome.id),
            Some(step),
        );
        step_events(&mut steps, step, o_idx);
        b.text(&format!(
            ". {} follow-up was unremarkable.",
            capitalize(poss)
        ));

        let (text, entities) = b.finish();

        // ---- Temporal relations from the timeline ----
        self.emit_temporal_relations(rng, &steps, &mut relations);

        let is_user = rng.chance(self.config.user_submission_rate);
        let id = if is_user {
            format!("user:{index:06}")
        } else {
            format!("pmid:{}", 30_000_000 + index as u64)
        };
        let title = match rng.below(3) {
            0 => format!(
                "{} in a {age}-year-old {sex_word}: a case report",
                capitalize(&disease.preferred)
            ),
            1 => format!(
                "A rare presentation of {}: case report and literature review",
                disease.preferred
            ),
            _ => format!(
                "Case report: {} complicated by {}",
                disease.preferred,
                entities
                    .iter()
                    .find(|e| e.etype == EntityType::SignSymptom)
                    .map(|e| e.text.clone())
                    .unwrap_or_else(|| "multiorgan involvement".to_string())
            ),
        };
        let n_authors = rng.range(1, 7);
        let authors = (0..n_authors)
            .map(|_| {
                let surname = *rng.choose(SURNAMES);
                let initial = *rng.choose(INITIALS);
                format!("{surname} {initial}")
            })
            .collect();
        let metadata = ReportMetadata {
            authors,
            journal: rng.choose(JOURNALS).to_string(),
            year: rng.range(2000, 2021) as u32,
            mesh_terms: vec![
                category.coarse_label().to_string(),
                disease.preferred.clone(),
                "case reports".to_string(),
            ],
        };

        let report = CaseReport {
            id,
            title,
            category,
            metadata,
            text,
            entities,
            relations,
        };
        debug_assert_eq!(report.validate(), Ok(()));
        report
    }

    /// Emits timeline-consistent temporal relations: same-step OVERLAPs,
    /// adjacent-step BEFOREs, some long-range pairs (transitivity
    /// structure), and a few reversed AFTER pairs for label balance.
    fn emit_temporal_relations(
        &self,
        rng: &mut Rng,
        steps: &[Vec<usize>],
        relations: &mut Vec<GoldRelation>,
    ) {
        // Same-step OVERLAP chains.
        for events in steps {
            for w in events.windows(2) {
                relations.push(GoldRelation {
                    source: w[0],
                    target: w[1],
                    rtype: RelationType::Overlap,
                });
            }
        }
        // Adjacent non-empty steps: one BEFORE each.
        let non_empty: Vec<usize> = (0..steps.len()).filter(|&i| !steps[i].is_empty()).collect();
        for w in non_empty.windows(2) {
            let src = *rng.choose(&steps[w[0]]);
            let dst = *rng.choose(&steps[w[1]]);
            if rng.chance(0.8) {
                relations.push(GoldRelation {
                    source: src,
                    target: dst,
                    rtype: RelationType::Before,
                });
            } else {
                relations.push(GoldRelation {
                    source: dst,
                    target: src,
                    rtype: RelationType::After,
                });
            }
        }
        // Long-range pairs spanning at least two steps.
        if non_empty.len() >= 3 {
            for _ in 0..2 {
                let i = rng.below(non_empty.len() - 2);
                let j = rng.range(i + 2, non_empty.len());
                let src = *rng.choose(&steps[non_empty[i]]);
                let dst = *rng.choose(&steps[non_empty[j]]);
                relations.push(GoldRelation {
                    source: src,
                    target: dst,
                    rtype: RelationType::Before,
                });
            }
        }
        // Dedup (same pair may be drawn twice).
        relations.sort_by_key(|r| (r.source, r.target, r.rtype.label()));
        relations.dedup_by_key(|r| (r.source, r.target, r.rtype));
    }
}

/// Injects a single character-level typo (swap, drop, or duplicate).
fn inject_typo(rng: &mut Rng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_string();
    }
    let pos = rng.range(1, chars.len() - 1);
    let mut out = chars.clone();
    match rng.below(3) {
        0 => {
            out.swap(pos, pos - 1);
        }
        1 => {
            out.remove(pos);
        }
        _ => {
            let c = out[pos];
            out.insert(pos, c);
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus(n: usize, seed: u64) -> Vec<CaseReport> {
        Generator::new(CorpusConfig {
            num_reports: n,
            seed,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn reports_validate() {
        for r in small_corpus(50, 1) {
            assert_eq!(r.validate(), Ok(()), "report {} invalid", r.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus(10, 99);
        let b = small_corpus(10, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.relations, y.relations);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_corpus(5, 1);
        let b = small_corpus(5, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn every_report_has_entities_and_relations() {
        for r in small_corpus(30, 3) {
            assert!(r.entities.len() >= 5, "{} too few entities", r.id);
            assert!(!r.relations.is_empty(), "{} has no relations", r.id);
            assert!(
                r.relations.iter().any(|rel| rel.rtype.is_temporal()),
                "{} has no temporal relations",
                r.id
            );
        }
    }

    #[test]
    fn category_mix_approximates_fig1() {
        let reports = small_corpus(3000, 7);
        let cvd = reports
            .iter()
            .filter(|r| r.category.coarse_label() == "cardiovascular")
            .count() as f64
            / reports.len() as f64;
        let cancer = reports
            .iter()
            .filter(|r| r.category.coarse_label() == "cancer")
            .count() as f64
            / reports.len() as f64;
        assert!((cvd - 0.20).abs() < 0.03, "CVD share {cvd}");
        assert!(cancer > cvd, "cancer {cancer} vs cvd {cvd}");
    }

    #[test]
    fn category_filter_restricts() {
        let cats: Vec<CaseCategory> = create_ontology::CvdArea::all()
            .iter()
            .map(|a| CaseCategory::Cardiovascular(*a))
            .collect();
        let g = Generator::new(CorpusConfig {
            num_reports: 20,
            category_filter: Some(cats),
            ..Default::default()
        });
        for r in g.generate() {
            assert_eq!(r.category.coarse_label(), "cardiovascular");
        }
    }

    #[test]
    fn typo_rate_produces_unnormalized_surfaces() {
        let clean = Generator::new(CorpusConfig {
            num_reports: 40,
            typo_rate: 0.0,
            seed: 5,
            ..Default::default()
        })
        .generate();
        let noisy = Generator::new(CorpusConfig {
            num_reports: 40,
            typo_rate: 0.5,
            seed: 5,
            ..Default::default()
        })
        .generate();
        let clean_text: String = clean.iter().map(|r| r.text.clone()).collect();
        let noisy_text: String = noisy.iter().map(|r| r.text.clone()).collect();
        assert_ne!(clean_text, noisy_text);
        for r in noisy {
            assert_eq!(r.validate(), Ok(()), "typos must not break spans");
        }
    }

    #[test]
    fn ids_mix_literature_and_user() {
        let g = Generator::new(CorpusConfig {
            num_reports: 300,
            user_submission_rate: 0.3,
            ..Default::default()
        });
        let reports = g.generate();
        let users = reports.iter().filter(|r| r.id.starts_with("user:")).count();
        let pmids = reports.iter().filter(|r| r.id.starts_with("pmid:")).count();
        assert!(users > 30, "only {users} user submissions");
        assert!(pmids > 150);
    }

    #[test]
    fn temporal_relations_are_consistent_with_timeline() {
        for r in small_corpus(40, 11) {
            for rel in &r.relations {
                if rel.rtype.is_temporal() {
                    assert_eq!(
                        r.timeline_relation(rel.source, rel.target),
                        Some(rel.rtype),
                        "{}: relation disagrees with timeline",
                        r.id
                    );
                }
            }
        }
    }

    #[test]
    fn long_range_relations_exist_for_transitivity() {
        let reports = small_corpus(50, 13);
        let has_long_range = reports.iter().any(|r| {
            r.relations.iter().any(|rel| {
                if !rel.rtype.is_temporal() {
                    return false;
                }
                match (
                    r.entities[rel.source].time_step,
                    r.entities[rel.target].time_step,
                ) {
                    (Some(a), Some(b)) => a.abs_diff(b) >= 2,
                    _ => false,
                }
            })
        });
        assert!(has_long_range);
    }

    #[test]
    fn metadata_is_plausible() {
        for r in small_corpus(20, 17) {
            assert!(!r.metadata.authors.is_empty());
            assert!((2000..=2021).contains(&r.metadata.year));
            assert!(r.metadata.mesh_terms.contains(&"case reports".to_string()));
            assert!(!r.title.is_empty());
        }
    }

    #[test]
    fn narrative_is_sentence_splittable() {
        for r in small_corpus(10, 19) {
            let sentences = create_text::split_sentences(&r.text);
            assert!(sentences.len() >= 4, "{}: {:?}", r.id, r.text);
        }
    }

    #[test]
    fn inject_typo_changes_long_strings() {
        let mut rng = Rng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..20 {
            if inject_typo(&mut rng, "amiodarone") != "amiodarone" {
                changed += 1;
            }
        }
        assert!(changed > 15);
        assert_eq!(inject_typo(&mut rng, "ab"), "ab");
    }
}
