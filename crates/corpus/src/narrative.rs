//! The span-tracking narrative builder.
//!
//! Templates append plain text and annotated mentions to a growing
//! narrative; the builder records exact byte spans as it goes, so gold
//! annotations are correct by construction — no post-hoc string searching.

use crate::report::GoldEntity;
use create_ontology::{ConceptId, EntityType};
use create_text::Span;

/// Accumulates narrative text plus gold mentions.
#[derive(Debug, Default)]
pub struct NarrativeBuilder {
    text: String,
    entities: Vec<GoldEntity>,
}

impl NarrativeBuilder {
    /// Creates an empty builder.
    pub fn new() -> NarrativeBuilder {
        NarrativeBuilder::default()
    }

    /// Appends plain (unannotated) text.
    pub fn text(&mut self, s: &str) -> &mut Self {
        self.text.push_str(s);
        self
    }

    /// Appends an annotated mention and returns its entity index.
    pub fn entity(
        &mut self,
        surface: &str,
        etype: EntityType,
        concept: Option<ConceptId>,
        time_step: Option<u32>,
    ) -> usize {
        let start = self.text.len();
        self.text.push_str(surface);
        let span = Span::new(start, self.text.len());
        self.entities.push(GoldEntity {
            span,
            text: surface.to_string(),
            etype,
            concept,
            time_step,
        });
        self.entities.len() - 1
    }

    /// Current text length in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Number of mentions so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Read-only view of the mentions so far.
    pub fn entities(&self) -> &[GoldEntity] {
        &self.entities
    }

    /// Finalizes into `(text, entities)`.
    pub fn finish(self) -> (String, Vec<GoldEntity>) {
        (self.text, self.entities)
    }
}

/// Uppercases the first character of a sentence in place (used when a
/// template begins with an entity mention — the *span* keeps the
/// capitalized surface so gold and text agree).
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Renders a number as an English count phrase for small n ("two", "three",
/// …), falling back to digits.
pub fn count_phrase(n: u32) -> String {
    match n {
        1 => "one".to_string(),
        2 => "two".to_string(),
        3 => "three".to_string(),
        4 => "four".to_string(),
        5 => "five".to_string(),
        6 => "six".to_string(),
        7 => "seven".to_string(),
        n => n.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_spans() {
        let mut b = NarrativeBuilder::new();
        b.text("The patient had ");
        let fever = b.entity("fever", EntityType::SignSymptom, None, Some(1));
        b.text(" and ");
        let cough = b.entity("cough", EntityType::SignSymptom, None, Some(1));
        b.text(".");
        let (text, entities) = b.finish();
        assert_eq!(text, "The patient had fever and cough.");
        assert_eq!(entities[fever].span.slice(&text), "fever");
        assert_eq!(entities[cough].span.slice(&text), "cough");
        assert_eq!(entities[fever].time_step, Some(1));
    }

    #[test]
    fn entity_indices_are_sequential() {
        let mut b = NarrativeBuilder::new();
        let a = b.entity("a", EntityType::Other, None, None);
        let c = b.entity("b", EntityType::Other, None, None);
        assert_eq!((a, c), (0, 1));
        assert_eq!(b.entity_count(), 2);
    }

    #[test]
    fn unicode_surfaces_are_tracked() {
        let mut b = NarrativeBuilder::new();
        b.text("Le patient avait de la ");
        let e = b.entity("fièvre", EntityType::SignSymptom, None, Some(1));
        let (text, entities) = b.finish();
        assert_eq!(entities[e].span.slice(&text), "fièvre");
    }

    #[test]
    fn capitalize_works() {
        assert_eq!(capitalize("fever"), "Fever");
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("échо"), "Échо");
    }

    #[test]
    fn count_phrase_words_and_digits() {
        assert_eq!(count_phrase(2), "two");
        assert_eq!(count_phrase(11), "11");
    }
}
