//! Synthetic clinical case-report corpus with gold annotations.
//!
//! The paper's data source is ~118k PubMed cardiovascular case reports plus
//! curated depositions (Section III-A) — access-gated and unannotatable at
//! reproduction scale. This crate is the substitution (DESIGN.md S1): a
//! seeded generator that produces case reports whose narratives follow the
//! clinical-course structure the paper describes (presentation → history →
//! diagnostics → diagnosis → treatment → course → outcome), with **gold**
//! entity spans, semantic/temporal relations, and a latent event timeline.
//! Because the gold labels come with the text, every downstream experiment
//! (NER F1, temporal F1, retrieval quality) can be scored exactly.
//!
//! Modules:
//! * [`report`] — the annotated case-report data model;
//! * [`narrative`] — the span-tracking narrative builder;
//! * [`generator`] — the case-report generator (Fig-1 category mix,
//!   PubMed-like metadata);
//! * [`temporal_data`] — I2B2-2012-like and TB-Dense-like pairwise
//!   temporal-relation datasets with controlled transitivity structure;
//! * [`queries`] — the retrieval workload: natural-language queries with
//!   graded gold relevance;
//! * [`cohort`] — the cohort-retrieval workload: declarative criteria
//!   queries (facet filters + temporal constraints) with exact gold
//!   cohorts evaluated from the reports' gold labels.

pub mod cohort;
pub mod generator;
pub mod narrative;
pub mod queries;
pub mod report;
pub mod temporal_data;

pub use cohort::{gold_cohorts, CohortSpec};
pub use generator::{CorpusConfig, Generator};
pub use queries::{QueryFamily, QuerySet, RelevanceGrade};
pub use report::{CaseReport, GoldEntity, GoldRelation, ReportMetadata};
