//! Gold-labeled cohort criteria queries.
//!
//! The cohort-retrieval harness needs criteria queries *and* exact
//! expected report sets. Each [`CohortSpec`] is a declarative criteria
//! document (facet filters plus temporal constraints — deliberately
//! keyword-free, so the engine's eligible set must equal the gold set
//! exactly, with no ranking fuzziness) together with
//! [`CohortSpec::matches`]: an independent evaluation of the same
//! criteria against a report's **gold labels** (category enum, metadata
//! year, gold entity types and timeline steps). The engine answers from
//! its facet bitmaps and property graph; the gold evaluator never looks
//! at either — agreement between the two is the precision/recall
//! experiment, not a tautology.
//!
//! The gold set stays off the `tnm`/`icd` facets: those are derived from
//! body text by the rule extractors, so gold evaluation would have to
//! re-run the very code under test. Staging/coding facets are covered
//! separately by crafted-report tests.

use crate::report::CaseReport;
use create_ontology::{ConceptId, EntityType, Ontology};

/// A declarative cohort criteria query with gold-evaluable semantics.
#[derive(Debug, Clone)]
pub struct CohortSpec {
    /// Stable name for diagnostics.
    pub name: &'static str,
    /// `(facet field label, accepted values)` — AND across entries, OR
    /// across one entry's values. Field labels are the wire labels
    /// (`"category"`, `"year"`, `"entity_type"`, `"sex"`, `"age_band"`).
    pub filters: Vec<(&'static str, Vec<&'static str>)>,
    /// `(concept surface a, op label, concept surface b, days)` — `days`
    /// only for `"within"`.
    pub temporal: Vec<(&'static str, &'static str, &'static str, Option<u32>)>,
    /// Facet fields to request aggregations for.
    pub facets: Vec<&'static str>,
    /// Result cap to request (large enough to return the whole cohort).
    pub k: usize,
}

/// One timeline step ≈ this many days (must agree with the engine's
/// `create_core::plan::STEP_DAYS`).
const STEP_DAYS: u32 = 30;

impl CohortSpec {
    /// Renders the criteria JSON the `/cohort` endpoint accepts.
    pub fn criteria_json(&self) -> String {
        let mut out = String::from("{");
        if !self.filters.is_empty() {
            out.push_str("\"filters\":[");
            for (i, (field, values)) in self.filters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"field\":\"{field}\",\"values\":["));
                for (j, v) in values.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{v}\""));
                }
                out.push_str("]}");
            }
            out.push_str("],");
        }
        if !self.temporal.is_empty() {
            out.push_str("\"temporal\":[");
            for (i, (a, op, b, days)) in self.temporal.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match days {
                    Some(d) => out.push_str(&format!(
                        "{{\"a\":\"{a}\",\"op\":\"{op}\",\"days\":{d},\"b\":\"{b}\"}}"
                    )),
                    None => out.push_str(&format!("{{\"a\":\"{a}\",\"op\":\"{op}\",\"b\":\"{b}\"}}")),
                }
            }
            out.push_str("],");
        }
        if !self.facets.is_empty() {
            out.push_str("\"facets\":[");
            for (i, f) in self.facets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{f}\""));
            }
            out.push_str("],");
        }
        out.push_str(&format!("\"k\":{}}}", self.k));
        out
    }

    /// Gold evaluation: does `report` belong to this cohort, judged from
    /// its gold labels only?
    pub fn matches(&self, report: &CaseReport, ontology: &Ontology) -> bool {
        self.filters
            .iter()
            .all(|(field, values)| filter_matches(report, field, values))
            && self
                .temporal
                .iter()
                .all(|c| temporal_matches(report, ontology, c))
    }

    /// The gold cohort: ids of matching reports, in corpus order.
    pub fn expected_ids(&self, corpus: &[CaseReport], ontology: &Ontology) -> Vec<String> {
        corpus
            .iter()
            .filter(|r| self.matches(r, ontology))
            .map(|r| r.id.clone())
            .collect()
    }
}

/// Gold evaluation of one facet filter against a report's labels.
fn filter_matches(report: &CaseReport, field: &str, values: &[&str]) -> bool {
    match field {
        "category" => values.contains(&report.category.coarse_label()),
        "year" => {
            let year = report.metadata.year.to_string();
            values.iter().any(|v| *v == year)
        }
        "entity_type" => report
            .entities
            .iter()
            .any(|e| values.contains(&e.etype.label())),
        "sex" => report
            .entities
            .iter()
            .filter(|e| e.etype == EntityType::Sex)
            .find_map(|e| gold_sex(&e.text))
            .is_some_and(|sex| values.contains(&sex)),
        "age_band" => report
            .entities
            .iter()
            .filter(|e| e.etype == EntityType::Age)
            .find_map(|e| gold_age_band(&e.text))
            .is_some_and(|band| values.iter().any(|v| *v == band)),
        other => panic!("gold cohort specs do not cover facet field {other:?}"),
    }
}

/// Gold evaluation of one temporal constraint: some pair of gold EVENT
/// mentions resolving to the two concepts must realize the operator on
/// the latent timeline.
fn temporal_matches(
    report: &CaseReport,
    ontology: &Ontology,
    (a, op, b, days): &(&str, &str, &str, Option<u32>),
) -> bool {
    let Some(ca) = resolve(ontology, a) else {
        return false;
    };
    let Some(cb) = resolve(ontology, b) else {
        return false;
    };
    let steps_of = |concept: ConceptId| -> Vec<u32> {
        report
            .entities
            .iter()
            .filter(|e| e.etype.is_event() && e.concept == Some(concept))
            .filter_map(|e| e.time_step)
            .collect()
    };
    let sa = steps_of(ca);
    let sb = steps_of(cb);
    sa.iter().any(|&x| {
        sb.iter().any(|&y| match *op {
            "before" => x < y,
            "after" => x > y,
            "overlaps" => x == y,
            "within" => {
                let budget = days.expect("within has days");
                x.abs_diff(y) * STEP_DAYS <= budget
            }
            other => panic!("unknown temporal op {other:?}"),
        })
    })
}

fn resolve(ontology: &Ontology, surface: &str) -> Option<ConceptId> {
    ontology.normalize(surface, None).map(|n| n.concept)
}

/// Independent sex normalization (mirrors the facet extractor's contract:
/// female patterns checked before male — "woman" contains "man").
fn gold_sex(surface: &str) -> Option<&'static str> {
    let lower = surface.to_lowercase();
    if ["female", "woman", "girl"].iter().any(|p| lower.contains(p)) {
        return Some("female");
    }
    if ["male", "man", "boy"].iter().any(|p| lower.contains(p)) {
        return Some("male");
    }
    None
}

/// Independent decade banding of an Age mention's leading integer.
fn gold_age_band(surface: &str) -> Option<String> {
    let digits: String = surface.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() || digits.len() > 3 {
        return None;
    }
    let age: u32 = digits.parse().ok()?;
    let lo = (age / 10) * 10;
    Some(format!("{lo}-{}", lo + 9))
}

/// The gold cohort workload: 22 criteria queries spanning demographic,
/// categorical, entity-type, and temporal axes, plus combinations.
pub fn gold_cohorts() -> Vec<CohortSpec> {
    let k = 2000; // large enough to return every matching report
    let spec = |name,
                filters: Vec<(&'static str, Vec<&'static str>)>,
                temporal: Vec<(&'static str, &'static str, &'static str, Option<u32>)>,
                facets: Vec<&'static str>| CohortSpec {
        name,
        filters,
        temporal,
        facets,
        k,
    };
    vec![
        spec(
            "cancer-reports",
            vec![("category", vec!["cancer"])],
            vec![],
            vec!["sex", "year"],
        ),
        spec(
            "cardiovascular-reports",
            vec![("category", vec!["cardiovascular"])],
            vec![],
            vec!["age_band"],
        ),
        spec(
            "infectious-or-respiratory",
            vec![("category", vec!["infectious", "respiratory"])],
            vec![],
            vec!["category"],
        ),
        spec(
            "female-patients",
            vec![("sex", vec!["female"])],
            vec![],
            vec!["category"],
        ),
        spec(
            "male-patients",
            vec![("sex", vec!["male"])],
            vec![],
            vec![],
        ),
        spec(
            "sixties-cohort",
            vec![("age_band", vec!["60-69"])],
            vec![],
            vec!["sex"],
        ),
        spec(
            "elderly-cohort",
            vec![("age_band", vec!["70-79", "80-89", "90-99"])],
            vec![],
            vec!["age_band"],
        ),
        spec(
            "published-2015",
            vec![("year", vec!["2015"])],
            vec![],
            vec![],
        ),
        spec(
            "recent-reports",
            vec![("year", vec!["2018", "2019", "2020"])],
            vec![],
            vec!["year"],
        ),
        spec(
            "medicated-patients",
            vec![("entity_type", vec!["Medication"])],
            vec![],
            vec!["category"],
        ),
        spec(
            "lab-documented",
            vec![("entity_type", vec!["Lab_value"])],
            vec![],
            vec![],
        ),
        spec(
            "female-cancer",
            vec![("category", vec!["cancer"]), ("sex", vec!["female"])],
            vec![],
            vec!["age_band"],
        ),
        spec(
            "male-cardiovascular-recent",
            vec![
                ("category", vec!["cardiovascular"]),
                ("sex", vec!["male"]),
                ("year", vec!["2016", "2017", "2018", "2019", "2020"]),
            ],
            vec![],
            vec![],
        ),
        spec(
            "elderly-female-medicated",
            vec![
                ("sex", vec!["female"]),
                ("age_band", vec!["60-69", "70-79", "80-89"]),
                ("entity_type", vec!["Medication"]),
            ],
            vec![],
            vec!["category"],
        ),
        spec(
            "weight-loss-before-fatigue",
            vec![],
            vec![("weight loss", "before", "fatigue", None)],
            vec!["category"],
        ),
        spec(
            "fatigue-after-weight-loss",
            vec![],
            vec![("fatigue", "after", "weight loss", None)],
            vec![],
        ),
        spec(
            "fever-with-malaise",
            vec![],
            vec![("fever", "overlaps", "malaise", None)],
            vec![],
        ),
        spec(
            "anorexia-within-2-months-of-weight-loss",
            vec![],
            vec![("anorexia", "within", "weight loss", Some(60))],
            vec!["sex"],
        ),
        spec(
            "chest-pain-near-palpitations",
            vec![],
            vec![("chest pain", "within", "palpitations", Some(90))],
            vec!["category"],
        ),
        spec(
            "cough-near-rhinorrhea",
            vec![],
            vec![("cough", "within", "rhinorrhea", Some(120))],
            vec![],
        ),
        spec(
            "female-weight-loss-before-fatigue",
            vec![("sex", vec!["female"])],
            vec![("weight loss", "before", "fatigue", None)],
            vec!["age_band"],
        ),
        spec(
            "cardiovascular-palpitations-near-syncope",
            vec![("category", vec!["cardiovascular"])],
            vec![("palpitations", "within", "syncope", Some(180))],
            vec!["year", "sex"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, Generator};

    fn corpus() -> (Vec<CaseReport>, Ontology) {
        let generator = Generator::new(CorpusConfig {
            num_reports: 120,
            seed: 11,
            ..CorpusConfig::default()
        });
        let reports = generator.generate();
        (reports, create_ontology::clinical_ontology())
    }

    #[test]
    fn gold_set_has_at_least_twenty_queries() {
        assert!(gold_cohorts().len() >= 20);
    }

    #[test]
    fn criteria_json_is_well_formed_per_spec() {
        for spec in gold_cohorts() {
            let json = spec.criteria_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains("\"k\":2000"), "{json}");
            let has_axis = json.contains("\"filters\"") || json.contains("\"temporal\"");
            assert!(has_axis, "{}: criteria must constrain something", spec.name);
        }
    }

    #[test]
    fn gold_evaluation_is_deterministic_and_nontrivial() {
        let (corpus, ontology) = corpus();
        let mut nonempty = 0usize;
        let mut temporal_nonempty = 0usize;
        for spec in gold_cohorts() {
            let a = spec.expected_ids(&corpus, &ontology);
            let b = spec.expected_ids(&corpus, &ontology);
            assert_eq!(a, b, "{} must be deterministic", spec.name);
            assert!(
                a.len() < corpus.len(),
                "{} matched everything — not a filter",
                spec.name
            );
            if !a.is_empty() {
                nonempty += 1;
                if !spec.temporal.is_empty() {
                    temporal_nonempty += 1;
                }
            }
        }
        assert!(
            nonempty >= 10,
            "only {nonempty} gold cohorts matched any report — workload too thin"
        );
        assert!(
            temporal_nonempty >= 2,
            "only {temporal_nonempty} temporal cohorts matched — temporal axis untested"
        );
    }

    #[test]
    fn demographic_filters_agree_with_entities() {
        let (corpus, ontology) = corpus();
        let female = CohortSpec {
            name: "f",
            filters: vec![("sex", vec!["female"])],
            temporal: vec![],
            facets: vec![],
            k: 10,
        };
        let male = CohortSpec {
            name: "m",
            filters: vec![("sex", vec!["male"])],
            temporal: vec![],
            facets: vec![],
            k: 10,
        };
        for report in &corpus {
            assert!(
                !(female.matches(report, &ontology) && male.matches(report, &ontology)),
                "{}: cannot be both sexes (first Sex mention decides)",
                report.id
            );
        }
    }

    #[test]
    fn temporal_ops_are_mutually_consistent() {
        let (corpus, ontology) = corpus();
        let before = CohortSpec {
            name: "b",
            filters: vec![],
            temporal: vec![("weight loss", "before", "fatigue", None)],
            facets: vec![],
            k: 10,
        };
        let after_swapped = CohortSpec {
            name: "a",
            filters: vec![],
            temporal: vec![("fatigue", "after", "weight loss", None)],
            facets: vec![],
            k: 10,
        };
        for report in &corpus {
            assert_eq!(
                before.matches(report, &ontology),
                after_swapped.matches(report, &ontology),
                "{}: X before Y must equal Y after X",
                report.id
            );
        }
    }
}
