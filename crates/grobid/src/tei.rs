//! Grobid-style header/section extraction and TEI generation.
//!
//! Takes the page text recovered by [`crate::pdf::extract_text`] and
//! applies layout heuristics in the spirit of Grobid's header model:
//! title first, then the author line (comma-separated proper names),
//! then affiliation lines (institution keywords), then the abstract
//! (after an "Abstract" heading) and body sections split on recognized
//! headings. The result serializes to TEI XML, the format Grobid emits.

use crate::pdf::{extract_text, PdfError};
use crate::xml::XmlElement;

/// Structured output of the submission pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtractedDocument {
    /// Document title.
    pub title: String,
    /// Author names.
    pub authors: Vec<String>,
    /// Affiliation string.
    pub affiliation: String,
    /// Abstract text (empty when absent).
    pub abstract_text: String,
    /// `(heading, paragraph text)` body sections.
    pub sections: Vec<(String, String)>,
}

const AFFILIATION_KEYWORDS: &[&str] = &[
    "university",
    "hospital",
    "department",
    "institute",
    "college",
    "school of",
    "center",
    "centre",
    "clinic",
];

const SECTION_HEADINGS: &[&str] = &[
    "introduction",
    "background",
    "case report",
    "case presentation",
    "case description",
    "methods",
    "results",
    "discussion",
    "conclusion",
    "conclusions",
    "acknowledgement",
    "acknowledgements",
    "references",
];

fn looks_like_affiliation(line: &str) -> bool {
    let lower = line.to_lowercase();
    AFFILIATION_KEYWORDS.iter().any(|k| lower.contains(k))
}

fn looks_like_author_line(line: &str) -> bool {
    // Comma-separated groups, each a couple of capitalized words, no
    // affiliation keywords.
    if looks_like_affiliation(line) || line.is_empty() {
        return false;
    }
    let groups: Vec<&str> = line.split(',').map(str::trim).collect();
    if groups.is_empty() {
        return false;
    }
    let authorish = groups
        .iter()
        .filter(|g| {
            let words: Vec<&str> = g.split_whitespace().collect();
            !words.is_empty()
                && words.len() <= 4
                && words
                    .iter()
                    .all(|w| w.chars().next().is_some_and(char::is_uppercase))
        })
        .count();
    authorish * 2 >= groups.len().max(1)
}

fn is_heading(line: &str) -> Option<String> {
    let trimmed = line.trim().trim_end_matches(['.', ':']);
    let lower = trimmed.to_lowercase();
    // Strip "1." / "IV)" style enumeration prefixes: the first word must be
    // all digits or roman numerals and carry (or imply) a separator.
    let candidate = match lower.split_once(' ') {
        Some((first, rest)) => {
            let core = first.trim_end_matches(['.', ')']);
            let numeric = !core.is_empty()
                && core
                    .chars()
                    .all(|c| c.is_ascii_digit() || matches!(c, 'i' | 'v' | 'x'));
            let has_separator = first.ends_with('.')
                || first.ends_with(')')
                || core.chars().all(|c| c.is_ascii_digit());
            if numeric && has_separator {
                rest.trim().to_string()
            } else {
                lower.clone()
            }
        }
        None => lower.clone(),
    };
    if SECTION_HEADINGS.contains(&candidate.as_str()) {
        Some(trimmed.to_string())
    } else {
        None
    }
}

/// Extracts structure from page text lines.
pub fn extract_structure(pages: &[Vec<String>]) -> ExtractedDocument {
    let lines: Vec<&String> = pages.iter().flatten().collect();
    let mut doc = ExtractedDocument::default();
    let mut i = 0;
    // Title: first non-empty line (possibly continued until the author
    // line).
    while i < lines.len() && lines[i].trim().is_empty() {
        i += 1;
    }
    let mut title_parts = Vec::new();
    while i < lines.len()
        && !lines[i].trim().is_empty()
        && !looks_like_author_line(lines[i])
        && title_parts.len() < 3
    {
        title_parts.push(lines[i].trim().to_string());
        i += 1;
    }
    doc.title = title_parts.join(" ");
    // Authors.
    if i < lines.len() && looks_like_author_line(lines[i]) {
        doc.authors = lines[i]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        i += 1;
    }
    // Affiliations (possibly multiple lines).
    let mut affiliations = Vec::new();
    while i < lines.len() && looks_like_affiliation(lines[i]) {
        affiliations.push(lines[i].trim().to_string());
        i += 1;
    }
    doc.affiliation = affiliations.join("; ");

    // Abstract and sections.
    let mut current_heading: Option<String> = None;
    let mut current_body: Vec<String> = Vec::new();
    let mut in_abstract = false;
    let flush = |doc: &mut ExtractedDocument,
                 heading: &mut Option<String>,
                 body: &mut Vec<String>,
                 in_abstract: &mut bool| {
        let text = body.join(" ").trim().to_string();
        if *in_abstract {
            doc.abstract_text = text;
            *in_abstract = false;
        } else if let Some(h) = heading.take() {
            doc.sections.push((h, text));
        } else if !text.is_empty() {
            doc.sections.push(("Body".to_string(), text));
        }
        body.clear();
    };
    while i < lines.len() {
        let line = lines[i].trim();
        if line.eq_ignore_ascii_case("abstract") {
            flush(
                &mut doc,
                &mut current_heading,
                &mut current_body,
                &mut in_abstract,
            );
            in_abstract = true;
        } else if let Some(h) = is_heading(line) {
            flush(
                &mut doc,
                &mut current_heading,
                &mut current_body,
                &mut in_abstract,
            );
            current_heading = Some(h);
        } else if !line.is_empty() {
            current_body.push(line.to_string());
        }
        i += 1;
    }
    flush(
        &mut doc,
        &mut current_heading,
        &mut current_body,
        &mut in_abstract,
    );
    doc
}

/// Full pipeline: PDF bytes → structured document.
pub fn process_pdf(bytes: &[u8]) -> Result<ExtractedDocument, PdfError> {
    let pages = extract_text(bytes)?;
    Ok(extract_structure(&pages))
}

impl ExtractedDocument {
    /// Serializes to TEI XML (the Grobid output format).
    pub fn to_tei(&self) -> XmlElement {
        let mut title_stmt = XmlElement::new("titleStmt").child(
            XmlElement::new("title")
                .attr("level", "a")
                .text(&self.title),
        );
        for author in &self.authors {
            title_stmt = title_stmt.child(
                XmlElement::new("author")
                    .child(XmlElement::new("persName").text(author))
                    .child(XmlElement::new("affiliation").text(&self.affiliation)),
            );
        }
        let header = XmlElement::new("teiHeader").child(
            XmlElement::new("fileDesc").child(title_stmt).child(
                XmlElement::new("profileDesc")
                    .child(XmlElement::new("abstract").text(&self.abstract_text)),
            ),
        );
        let mut body = XmlElement::new("body");
        for (heading, text) in &self.sections {
            body = body.child(
                XmlElement::new("div")
                    .child(XmlElement::new("head").text(heading))
                    .child(XmlElement::new("p").text(text)),
            );
        }
        XmlElement::new("TEI")
            .attr("xmlns", "http://www.tei-c.org/ns/1.0")
            .child(header)
            .child(XmlElement::new("text").child(body))
    }

    /// Parses a TEI document back into the structured form (round-trip
    /// support and API for user-supplied TEI).
    pub fn from_tei(root: &XmlElement) -> ExtractedDocument {
        let mut doc = ExtractedDocument::default();
        if let Some(title) = root.descendants("title").first() {
            doc.title = title.text_content();
        }
        for author in root.descendants("persName") {
            doc.authors.push(author.text_content());
        }
        if let Some(aff) = root.descendants("affiliation").first() {
            doc.affiliation = aff.text_content();
        }
        if let Some(abs) = root.descendants("abstract").first() {
            doc.abstract_text = abs.text_content();
        }
        for div in root.descendants("div") {
            let head = div
                .find("head")
                .map(|h| h.text_content())
                .unwrap_or_default();
            let p = div.find("p").map(|p| p.text_content()).unwrap_or_default();
            doc.sections.push((head, p));
        }
        doc
    }

    /// Plain text of the body (abstract + sections) — what the ingestion
    /// pipeline indexes.
    pub fn body_text(&self) -> String {
        let mut out = String::new();
        if !self.abstract_text.is_empty() {
            out.push_str(&self.abstract_text);
            out.push_str("\n\n");
        }
        for (_, text) in &self.sections {
            out.push_str(text);
            out.push_str("\n\n");
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::{write_pdf, PdfSource};
    use crate::xml::parse_xml;

    fn sample_pdf() -> Vec<u8> {
        write_pdf(&PdfSource {
            title: "Recurrent syncope in Brugada syndrome: a case report".into(),
            authors: "Tanaka H, Rossi F".into(),
            affiliation: "Department of Cardiology, Example University Hospital".into(),
            body_lines: vec![
                "Abstract".into(),
                "We report recurrent syncope in a 41-year-old man.".into(),
                "Introduction".into(),
                "Brugada syndrome is an inherited arrhythmia disorder.".into(),
                "Case report".into(),
                "The patient presented after a syncopal episode.".into(),
                "An ICD was implanted.".into(),
                "Conclusion".into(),
                "Prompt recognition prevents sudden death.".into(),
            ],
        })
    }

    #[test]
    fn extracts_header_fields() {
        let doc = process_pdf(&sample_pdf()).unwrap();
        assert_eq!(
            doc.title,
            "Recurrent syncope in Brugada syndrome: a case report"
        );
        assert_eq!(doc.authors, vec!["Tanaka H", "Rossi F"]);
        assert!(doc.affiliation.contains("Example University Hospital"));
    }

    #[test]
    fn extracts_abstract_and_sections() {
        let doc = process_pdf(&sample_pdf()).unwrap();
        assert!(doc.abstract_text.contains("recurrent syncope"));
        let headings: Vec<&str> = doc.sections.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(headings, vec!["Introduction", "Case report", "Conclusion"]);
        assert!(doc.sections[1].1.contains("ICD was implanted"));
    }

    #[test]
    fn tei_round_trip() {
        let doc = process_pdf(&sample_pdf()).unwrap();
        let tei = doc.to_tei();
        let reparsed = parse_xml(&tei.serialize()).unwrap();
        let recovered = ExtractedDocument::from_tei(&reparsed);
        assert_eq!(recovered.title, doc.title);
        assert_eq!(recovered.authors, doc.authors);
        assert_eq!(recovered.abstract_text, doc.abstract_text);
        assert_eq!(recovered.sections, doc.sections);
    }

    #[test]
    fn body_text_concatenates() {
        let doc = process_pdf(&sample_pdf()).unwrap();
        let body = doc.body_text();
        assert!(body.contains("recurrent syncope"));
        assert!(body.contains("Prompt recognition"));
    }

    #[test]
    fn heading_detection() {
        assert!(is_heading("Introduction").is_some());
        assert!(is_heading("1. Introduction").is_some());
        assert!(is_heading("DISCUSSION").is_some());
        assert!(is_heading("Case Presentation").is_some());
        assert!(is_heading("The patient improved").is_none());
    }

    #[test]
    fn author_line_heuristic() {
        assert!(looks_like_author_line("Smith J, Chen W, Patel K"));
        assert!(!looks_like_author_line(
            "Department of Medicine, Example University"
        ));
        assert!(!looks_like_author_line("the patient was admitted"));
    }

    #[test]
    fn documents_without_abstract_still_parse() {
        let pdf = write_pdf(&PdfSource {
            title: "No abstract here".into(),
            authors: "Solo A".into(),
            affiliation: "Tiny Clinic".into(),
            body_lines: vec!["Introduction".into(), "Text.".into()],
        });
        let doc = process_pdf(&pdf).unwrap();
        assert!(doc.abstract_text.is_empty());
        assert_eq!(doc.sections.len(), 1);
    }
}
