//! PDF submission service substrate (the reproduction's Grobid).
//!
//! The paper's PDF submission service "convert\[s\] the publications in PDF
//! format into well organized XML format", auto-extracting title, author,
//! and affiliation metadata. This crate implements the whole path on real
//! bytes (DESIGN.md substitution S7):
//!
//! * [`pdf`] — a writer for a minimal, valid, uncompressed PDF subset
//!   (used to fabricate test inputs from case reports) and a parser that
//!   recovers page text from content streams (`BT`/`ET`, `Tj`, `TJ`, `Td`,
//!   string escapes);
//! * [`xml`] — a small XML parser/serializer (elements, attributes, text,
//!   comments, entities);
//! * [`tei`] — Grobid-style header and section extraction from page text,
//!   and TEI XML generation.

pub mod pdf;
pub mod tei;
pub mod xml;

pub use pdf::{extract_text, write_pdf, PdfError, PdfSource};
pub use tei::{process_pdf, ExtractedDocument};
pub use xml::{parse_xml, XmlElement, XmlError, XmlNode};
