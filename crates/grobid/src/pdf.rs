//! Minimal PDF writer and text extractor.
//!
//! The writer emits a valid uncompressed PDF 1.4 file: catalog → page tree
//! → pages, each page with a literal content stream of text-showing
//! operators, a Helvetica font resource, and a correct xref table. The
//! extractor is independent code that scans content streams and interprets
//! the text operators (`BT`/`ET`, `Tf`, `Td`/`TD`/`T*`, `Tj`, `TJ`, `'`),
//! decoding literal-string escapes — so the round-trip genuinely exercises
//! a parse of the binary format, not a string passthrough.

use std::fmt;

/// Logical source for PDF generation: a title block plus body lines.
#[derive(Debug, Clone, Default)]
pub struct PdfSource {
    /// Title (rendered at larger font).
    pub title: String,
    /// Author line (comma-separated names).
    pub authors: String,
    /// Affiliation line.
    pub affiliation: String,
    /// Body lines, already wrapped; blank strings become vertical space.
    pub body_lines: Vec<String>,
}

/// PDF parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfError {
    /// Description.
    pub message: String,
}

impl fmt::Display for PdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PDF error: {}", self.message)
    }
}

impl std::error::Error for PdfError {}

fn err(message: impl Into<String>) -> PdfError {
    PdfError {
        message: message.into(),
    }
}

/// Escapes a string for a PDF literal string `(…)`.
fn escape_pdf_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_ascii() => out.push(c),
            // Non-ASCII: degrade to '?' — the simple font model here is
            // WinAnsi-less Helvetica; metadata accuracy tests use ASCII.
            _ => out.push('?'),
        }
    }
    out
}

const LINES_PER_PAGE: usize = 48;

/// Renders a [`PdfSource`] into PDF bytes. Long documents flow onto
/// multiple pages.
pub fn write_pdf(source: &PdfSource) -> Vec<u8> {
    // Assemble per-page content streams.
    // (text, font size)
    let mut all_lines: Vec<(String, u32)> = vec![
        (source.title.clone(), 16),
        (source.authors.clone(), 11),
        (source.affiliation.clone(), 10),
        (String::new(), 10),
    ];
    for line in &source.body_lines {
        all_lines.push((line.clone(), 10));
    }
    let pages: Vec<&[(String, u32)]> = all_lines.chunks(LINES_PER_PAGE).collect();
    let num_pages = pages.len().max(1);

    // Object layout: 1 catalog, 2 pages root, 3 font, then per page i:
    // (4 + 2i) page object, (5 + 2i) content stream.
    let mut objects: Vec<(u32, String)> = Vec::new();
    let kids: Vec<String> = (0..num_pages)
        .map(|i| format!("{} 0 R", 4 + 2 * i))
        .collect();
    objects.push((1, "<< /Type /Catalog /Pages 2 0 R >>".to_string()));
    objects.push((
        2,
        format!(
            "<< /Type /Pages /Kids [{}] /Count {} >>",
            kids.join(" "),
            num_pages
        ),
    ));
    objects.push((
        3,
        "<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>".to_string(),
    ));
    for (i, page_lines) in pages.iter().enumerate() {
        let page_obj = 4 + 2 * i as u32;
        let content_obj = page_obj + 1;
        objects.push((
            page_obj,
            format!(
                "<< /Type /Page /Parent 2 0 R /MediaBox [0 0 612 792] \
                 /Resources << /Font << /F1 3 0 R >> >> /Contents {content_obj} 0 R >>"
            ),
        ));
        let mut stream = String::new();
        stream.push_str("BT\n/F1 10 Tf\n72 760 Td\n14 TL\n");
        let mut current_size = 10;
        for (text, size) in page_lines.iter() {
            if *size != current_size {
                stream.push_str(&format!("/F1 {size} Tf\n"));
                current_size = *size;
            }
            stream.push_str(&format!("({}) Tj\nT*\n", escape_pdf_string(text)));
        }
        stream.push_str("ET\n");
        objects.push((
            content_obj,
            format!("<< /Length {} >>\nstream\n{stream}endstream", stream.len()),
        ));
    }

    // Serialize with a correct xref.
    let mut out = Vec::new();
    out.extend_from_slice(b"%PDF-1.4\n");
    let mut offsets = vec![0usize; objects.len() + 1];
    for (id, body) in &objects {
        offsets[*id as usize] = out.len();
        out.extend_from_slice(format!("{id} 0 obj\n{body}\nendobj\n").as_bytes());
    }
    let xref_offset = out.len();
    out.extend_from_slice(format!("xref\n0 {}\n", objects.len() + 1).as_bytes());
    out.extend_from_slice(b"0000000000 65535 f \n");
    for offset in offsets.iter().skip(1) {
        out.extend_from_slice(format!("{offset:010} 00000 n \n").as_bytes());
    }
    out.extend_from_slice(
        format!(
            "trailer\n<< /Size {} /Root 1 0 R >>\nstartxref\n{xref_offset}\n%%EOF\n",
            objects.len() + 1
        )
        .as_bytes(),
    );
    out
}

/// Extracts text lines per page from PDF bytes.
///
/// Understands the uncompressed subset this crate writes plus common
/// variations: multiple content streams, `TD`/`Td`/`T*` line movement,
/// `'` (move-and-show), literal-string escapes including octal.
pub fn extract_text(bytes: &[u8]) -> Result<Vec<Vec<String>>, PdfError> {
    if !bytes.starts_with(b"%PDF-") {
        return Err(err("missing %PDF header"));
    }
    let mut pages = Vec::new();
    let mut i = 0;
    while let Some(start) = find(bytes, b"stream", i) {
        // Stream data begins after "stream" + EOL.
        let mut data_start = start + b"stream".len();
        if bytes.get(data_start) == Some(&b'\r') {
            data_start += 1;
        }
        if bytes.get(data_start) == Some(&b'\n') {
            data_start += 1;
        }
        let end =
            find(bytes, b"endstream", data_start).ok_or_else(|| err("unterminated stream"))?;
        let stream = &bytes[data_start..end];
        let lines = parse_content_stream(stream)?;
        if !lines.is_empty() {
            pages.push(lines);
        }
        i = end + b"endstream".len();
    }
    if pages.is_empty() {
        return Err(err("no text content streams found"));
    }
    Ok(pages)
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Interprets the text operators in one content stream.
fn parse_content_stream(stream: &[u8]) -> Result<Vec<String>, PdfError> {
    let mut lines: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_text = false;
    let mut i = 0;
    let mut pending_strings: Vec<String> = Vec::new();
    let flush_line = |lines: &mut Vec<String>, current: &mut String| {
        lines.push(std::mem::take(current));
    };
    while i < stream.len() {
        let c = stream[i];
        match c {
            b'(' => {
                let (s, next) = parse_literal_string(stream, i)?;
                pending_strings.push(s);
                i = next;
            }
            b'[' => {
                // TJ array: collect strings until ']'.
                i += 1;
            }
            b']' => {
                i += 1;
            }
            b'B' if stream[i..].starts_with(b"BT") => {
                in_text = true;
                i += 2;
            }
            b'E' if stream[i..].starts_with(b"ET") => {
                in_text = false;
                if !current.is_empty() {
                    flush_line(&mut lines, &mut current);
                }
                i += 2;
            }
            b'T' => {
                let op = stream.get(i + 1).copied().unwrap_or(0);
                match op {
                    b'j' | b'J' => {
                        // Show text: append pending strings to current line.
                        for s in pending_strings.drain(..) {
                            current.push_str(&s);
                        }
                        i += 2;
                    }
                    b'd' | b'D' | b'*' => {
                        // Line movement: emit the current line.
                        if in_text {
                            flush_line(&mut lines, &mut current);
                        }
                        pending_strings.clear();
                        i += 2;
                    }
                    _ => i += 1,
                }
            }
            b'\'' => {
                // Move to next line and show.
                if in_text {
                    flush_line(&mut lines, &mut current);
                }
                for s in pending_strings.drain(..) {
                    current.push_str(&s);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    if !current.is_empty() {
        lines.push(current);
    }
    // Trim trailing empties from T* after the last Tj.
    while lines.last().map(|l| l.is_empty()).unwrap_or(false) {
        lines.pop();
    }
    // Leading empty from the initial Td.
    while lines.first().map(|l| l.is_empty()).unwrap_or(false) && lines.len() > 1 {
        lines.remove(0);
    }
    Ok(lines)
}

/// Parses a literal string starting at the `(`; returns `(text, index past
/// the closing paren)`.
fn parse_literal_string(stream: &[u8], start: usize) -> Result<(String, usize), PdfError> {
    debug_assert_eq!(stream[start], b'(');
    let mut out = String::new();
    let mut depth = 1;
    let mut i = start + 1;
    while i < stream.len() {
        match stream[i] {
            b'\\' => {
                let esc = *stream.get(i + 1).ok_or_else(|| err("dangling escape"))?;
                match esc {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'(' => out.push('('),
                    b')' => out.push(')'),
                    b'\\' => out.push('\\'),
                    b'0'..=b'7' => {
                        // Up to three octal digits.
                        let mut val = 0u32;
                        let mut n = 0;
                        while n < 3 {
                            match stream.get(i + 1 + n) {
                                Some(&d) if (b'0'..=b'7').contains(&d) => {
                                    val = val * 8 + (d - b'0') as u32;
                                    n += 1;
                                }
                                _ => break,
                            }
                        }
                        out.push(char::from_u32(val).unwrap_or('?'));
                        i += n - 1; // plus the 2 below
                    }
                    _ => out.push(esc as char),
                }
                i += 2;
            }
            b'(' => {
                depth += 1;
                out.push('(');
                i += 1;
            }
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((out, i + 1));
                }
                out.push(')');
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    Err(err("unterminated literal string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_source() -> PdfSource {
        PdfSource {
            title: "Takotsubo cardiomyopathy in a 62-year-old woman: a case report".into(),
            authors: "Chen W, Garcia M, Smith J".into(),
            affiliation: "Department of Cardiology, Example University Hospital".into(),
            body_lines: vec![
                "Abstract".into(),
                "A 62-year-old woman presented with chest pain (acute onset).".into(),
                "".into(),
                "Introduction".into(),
                "Stress cardiomyopathy mimics myocardial infarction.".into(),
            ],
        }
    }

    #[test]
    fn writes_valid_header_and_eof() {
        let bytes = write_pdf(&sample_source());
        assert!(bytes.starts_with(b"%PDF-1.4"));
        assert!(bytes.windows(5).any(|w| w == b"%%EOF"));
        assert!(bytes.windows(4).any(|w| w == b"xref"));
    }

    #[test]
    fn round_trips_text() {
        let bytes = write_pdf(&sample_source());
        let pages = extract_text(&bytes).unwrap();
        assert_eq!(pages.len(), 1);
        let lines = &pages[0];
        assert_eq!(
            lines[0],
            "Takotsubo cardiomyopathy in a 62-year-old woman: a case report"
        );
        assert_eq!(lines[1], "Chen W, Garcia M, Smith J");
        assert!(lines.iter().any(|l| l.contains("chest pain (acute onset)")));
    }

    #[test]
    fn escapes_round_trip() {
        let src = PdfSource {
            title: "Parens (and) back\\slash".into(),
            authors: "A".into(),
            affiliation: "B".into(),
            body_lines: vec![],
        };
        let pages = extract_text(&write_pdf(&src)).unwrap();
        assert_eq!(pages[0][0], "Parens (and) back\\slash");
    }

    #[test]
    fn multi_page_flow() {
        let src = PdfSource {
            title: "Long report".into(),
            authors: "A".into(),
            affiliation: "B".into(),
            body_lines: (0..120).map(|i| format!("Body line {i}")).collect(),
        };
        let pages = extract_text(&write_pdf(&src)).unwrap();
        assert!(
            pages.len() >= 2,
            "expected multiple pages, got {}",
            pages.len()
        );
        let all: Vec<String> = pages.concat();
        assert!(all.contains(&"Body line 119".to_string()));
    }

    #[test]
    fn xref_offsets_are_correct() {
        // Every xref entry must point at "N 0 obj".
        let bytes = write_pdf(&sample_source());
        let text = String::from_utf8_lossy(&bytes);
        let xref_pos = text.find("xref\n").unwrap();
        let entries: Vec<&str> = text[xref_pos..]
            .lines()
            .skip(2) // "xref", "0 N"
            .take_while(|l| l.ends_with("n ") || l.ends_with("f "))
            .collect();
        for (i, entry) in entries.iter().enumerate().skip(1) {
            let offset: usize = entry[..10].parse().unwrap();
            let at = &bytes[offset..offset + 12.min(bytes.len() - offset)];
            let at = String::from_utf8_lossy(at);
            assert!(
                at.starts_with(&format!("{i} 0 obj")),
                "xref {i} points at {at:?}"
            );
        }
    }

    #[test]
    fn rejects_non_pdf() {
        assert!(extract_text(b"not a pdf").is_err());
        assert!(extract_text(b"%PDF-1.4\nno streams here").is_err());
    }

    #[test]
    fn non_ascii_degrades_not_panics() {
        let src = PdfSource {
            title: "Fièvre aiguë".into(),
            authors: "Müller K".into(),
            affiliation: "Hôpital".into(),
            body_lines: vec![],
        };
        let pages = extract_text(&write_pdf(&src)).unwrap();
        assert!(pages[0][0].starts_with("Fi?vre"));
    }

    #[test]
    fn octal_escape_parses() {
        let (s, next) = parse_literal_string(b"(a\\101b)", 0).unwrap();
        assert_eq!(s, "aAb");
        assert_eq!(next, 8);
    }

    #[test]
    fn nested_parens_in_strings() {
        let (s, _) = parse_literal_string(b"(a (nested) b)", 0).unwrap();
        assert_eq!(s, "a (nested) b");
    }
}
