//! A small XML parser and serializer.
//!
//! Covers what the TEI pipeline needs: elements with attributes, text
//! nodes, self-closing tags, comments, processing instructions/prolog,
//! CDATA, and the five predefined entities. No DTDs or namespace
//! resolution (prefixes are kept verbatim in names).

use std::collections::BTreeMap;
use std::fmt;

/// An XML node.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlNode {
    /// Child element.
    Element(XmlElement),
    /// Text content (entities decoded).
    Text(String),
}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlElement {
    /// Tag name (prefix preserved, e.g. `tei:title`).
    pub name: String,
    /// Attributes in document order (BTreeMap for stable serialization).
    pub attrs: BTreeMap<String, String>,
    /// Children.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element.
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder: sets an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Builder: appends a child element.
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder: appends a text node.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find_map(|c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given name.
    pub fn find_all(&self, name: &str) -> Vec<&XmlElement> {
        self.children
            .iter()
            .filter_map(|c| match c {
                XmlNode::Element(e) if e.name == name => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Recursive descendant search (document order).
    pub fn descendants(&self, name: &str) -> Vec<&XmlElement> {
        let mut out = Vec::new();
        for c in &self.children {
            if let XmlNode::Element(e) = c {
                if e.name == name {
                    out.push(e);
                }
                out.extend(e.descendants(name));
            }
        }
        out
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            match c {
                XmlNode::Text(t) => out.push_str(t),
                XmlNode::Element(e) => out.push_str(&e.text_content()),
            }
        }
        out
    }

    /// Serializes to an XML string (no declaration).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v, true));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                XmlNode::Text(t) => out.push_str(&escape(t, false)),
                XmlNode::Element(e) => e.write(out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn escape(s: &str, in_attr: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// XML parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte position.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document; returns the root element.
pub fn parse_xml(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = XmlParser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let root = p.element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, declarations, and DOCTYPE.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.input[self.pos..].starts_with("<?")
                || self.input[self.pos..].starts_with("<!DOCTYPE")
            {
                match self.input[self.pos..].find('>') {
                    Some(end) => self.pos += end + 1,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            let c = b as char;
            if c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        if self.bytes.get(self.pos) != Some(&b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut element = XmlElement::new(name);
        // Attributes.
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) != Some(&b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.bytes.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != quote) {
                        self.pos += 1;
                    }
                    if self.bytes.get(self.pos) != Some(&quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = decode_entities(&self.input[start..self.pos]);
                    self.pos += 1;
                    element.attrs.insert(key, value);
                }
                None => return Err(self.err("unexpected end in tag")),
            }
        }
        // Children until matching close tag.
        loop {
            if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.input[self.pos..].starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match self.input[start..].find("]]>") {
                    Some(end) => {
                        element
                            .children
                            .push(XmlNode::Text(self.input[start..start + end].to_string()));
                        self.pos = start + end + 3;
                    }
                    None => return Err(self.err("unterminated CDATA")),
                }
                continue;
            }
            if self.input[self.pos..].starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != element.name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected {}, got {close}",
                        element.name
                    )));
                }
                self.skip_ws();
                if self.bytes.get(self.pos) != Some(&b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.bytes.get(self.pos) {
                Some(b'<') => {
                    let child = self.element()?;
                    element.children.push(XmlNode::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'<') {
                        self.pos += 1;
                    }
                    let text = decode_entities(&self.input[start..self.pos]);
                    if !text.trim().is_empty() {
                        element.children.push(XmlNode::Text(text));
                    }
                }
                None => return Err(self.err("unexpected end inside element")),
            }
        }
    }
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest.find(';').unwrap_or(0);
        if end == 0 || end > 10 {
            out.push('&');
            rest = &rest[1..];
            continue;
        }
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            e if e.starts_with("#x") || e.starts_with("#X") => {
                if let Ok(v) = u32::from_str_radix(&e[2..], 16) {
                    out.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
                }
            }
            e if e.starts_with('#') => {
                if let Ok(v) = e[1..].parse::<u32>() {
                    out.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
                }
            }
            other => {
                out.push('&');
                out.push_str(other);
                out.push(';');
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let root = parse_xml("<a><b x=\"1\">hi</b><c/></a>").unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.find("b").unwrap().attrs["x"], "1");
        assert_eq!(root.find("b").unwrap().text_content(), "hi");
        assert!(root.find("c").unwrap().children.is_empty());
    }

    #[test]
    fn skips_prolog_doctype_comments() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE tei><!-- note --><root>x</root>";
        let root = parse_xml(doc).unwrap();
        assert_eq!(root.text_content(), "x");
    }

    #[test]
    fn decodes_entities() {
        let root = parse_xml("<t a='&quot;q&quot;'>&lt;&amp;&gt; &#65;&#x42;</t>").unwrap();
        assert_eq!(root.attrs["a"], "\"q\"");
        assert_eq!(root.text_content(), "<&> AB");
    }

    #[test]
    fn cdata_preserved() {
        let root = parse_xml("<t><![CDATA[a<b&c]]></t>").unwrap();
        assert_eq!(root.text_content(), "a<b&c");
    }

    #[test]
    fn round_trip() {
        let e = XmlElement::new("teiHeader")
            .attr("type", "case report")
            .child(XmlElement::new("title").text("MI & recovery <fast>"));
        let re = parse_xml(&e.serialize()).unwrap();
        assert_eq!(re, e);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
    }

    #[test]
    fn descendants_search() {
        let root = parse_xml("<a><b><c>1</c></b><c>2</c></a>").unwrap();
        let cs = root.descendants("c");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].text_content(), "1");
    }

    #[test]
    fn namespaced_names_kept() {
        let root = parse_xml("<tei:TEI xmlns:tei=\"http://x\"><tei:text/></tei:TEI>").unwrap();
        assert_eq!(root.name, "tei:TEI");
        assert!(root.find("tei:text").is_some());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let root = parse_xml("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }
}
