//! The storage manifest: the single source of truth for which segment
//! files are live.
//!
//! A segment file only becomes visible to recovery once the manifest
//! names it, and the manifest is swapped atomically: serialize to
//! `MANIFEST.tmp`, fsync the file, rename over `MANIFEST`, fsync the
//! directory. A crash at any point leaves either the old or the new
//! manifest intact — never a blend — so recovery always sees a
//! consistent segment set. Orphaned segment files (written but never
//! named, or superseded by compaction) are deleted on the next
//! successful swap.

use crate::StorageError;
use create_docstore::json::{parse_json, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Manifest file name inside the storage directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
/// Bumped whenever the on-disk layout changes incompatibly.
pub const FORMAT_VERSION: i64 = 1;

/// One sealed, immutable segment file as registered in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the shard directory (`seg-NNNNNN.seg`).
    pub file: String,
    /// Number of documents the segment holds.
    pub docs: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// CRC-32 of the entire file (footer-verified on open).
    pub crc: u32,
    /// Smallest global ingest ordinal sealed into the segment.
    pub min_ordinal: u64,
    /// Largest global ingest ordinal sealed into the segment.
    pub max_ordinal: u64,
}

/// Per-shard manifest entry: the ordered list of live segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// Segments in ingest order; doc ids are assigned by concatenation.
    pub segments: Vec<SegmentMeta>,
    /// Monotonic counter naming the next segment file for this shard.
    pub next_segment_id: u64,
}

impl ShardManifest {
    /// Total documents across the shard's live segments.
    pub fn sealed_docs(&self) -> u64 {
        self.segments.iter().map(|s| s.docs).sum()
    }

    /// Total bytes across the shard's live segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }
}

/// The whole-engine manifest covering every shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Number of shards the data was written with; a mismatch at open
    /// forces a re-shard migration.
    pub shard_count: usize,
    pub shards: Vec<ShardManifest>,
}

impl Manifest {
    /// Fresh manifest for `shard_count` empty shards.
    pub fn new(shard_count: usize) -> Manifest {
        Manifest {
            shard_count,
            shards: vec![ShardManifest::default(); shard_count],
        }
    }

    /// Loads the manifest from `dir`, or `None` when no manifest exists
    /// (a fresh or legacy data directory).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StorageError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(StorageError::io(&path)(err)),
        };
        let value = parse_json(&text).map_err(|err| StorageError::Corrupt {
            path: path.clone(),
            message: format!("manifest is not valid JSON: {err}"),
        })?;
        Self::from_value(&value).map(Some).map_err(|message| StorageError::Corrupt {
            path,
            message,
        })
    }

    /// Atomically replaces the manifest in `dir` (tmp + fsync + rename
    /// + directory fsync).
    pub fn store(&self, dir: &Path) -> Result<(), StorageError> {
        std::fs::create_dir_all(dir).map_err(StorageError::io(dir))?;
        let tmp = dir.join(MANIFEST_TMP);
        let target = dir.join(MANIFEST_FILE);
        {
            use std::io::Write;
            let mut file = File::create(&tmp).map_err(StorageError::io(&tmp))?;
            file.write_all(self.to_value().to_json_pretty().as_bytes())
                .map_err(StorageError::io(&tmp))?;
            file.sync_all().map_err(StorageError::io(&tmp))?;
        }
        std::fs::rename(&tmp, &target).map_err(StorageError::io(&target))?;
        // Persist the rename itself: fsync the containing directory.
        if let Ok(dir_handle) = OpenOptions::new().read(true).open(dir) {
            let _ = dir_handle.sync_all();
        }
        Ok(())
    }

    /// Paths (relative file names per shard index) the manifest names;
    /// used to sweep orphaned segment files after a swap.
    pub fn live_files(&self) -> BTreeMap<usize, Vec<String>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| (i, shard.segments.iter().map(|s| s.file.clone()).collect()))
            .collect()
    }

    fn to_value(&self) -> Value {
        let mut root = Value::object();
        root.set("format", Value::from(FORMAT_VERSION));
        root.set("shard_count", Value::from(self.shard_count as i64));
        let shards: Vec<Value> = self
            .shards
            .iter()
            .map(|shard| {
                let mut entry = Value::object();
                entry.set("next_segment_id", Value::from(shard.next_segment_id as i64));
                let segments: Vec<Value> = shard
                    .segments
                    .iter()
                    .map(|seg| {
                        let mut s = Value::object();
                        s.set("file", Value::from(seg.file.as_str()));
                        s.set("docs", Value::from(seg.docs as i64));
                        s.set("bytes", Value::from(seg.bytes as i64));
                        s.set("crc", Value::from(seg.crc as i64));
                        s.set("min_ordinal", Value::from(seg.min_ordinal as i64));
                        s.set("max_ordinal", Value::from(seg.max_ordinal as i64));
                        s
                    })
                    .collect();
                entry.set("segments", Value::Array(segments));
                entry
            })
            .collect();
        root.set("shards", Value::Array(shards));
        root
    }

    fn from_value(value: &Value) -> Result<Manifest, String> {
        let format = value
            .get("format")
            .and_then(Value::as_i64)
            .ok_or("missing format field")?;
        if format != FORMAT_VERSION {
            return Err(format!("unsupported manifest format {format}"));
        }
        let shard_count = value
            .get("shard_count")
            .and_then(Value::as_i64)
            .ok_or("missing shard_count")? as usize;
        let shards_value = value
            .get("shards")
            .and_then(Value::as_array)
            .ok_or("missing shards array")?;
        if shards_value.len() != shard_count {
            return Err(format!(
                "shard_count {} disagrees with {} shard entries",
                shard_count,
                shards_value.len()
            ));
        }
        let mut shards = Vec::with_capacity(shards_value.len());
        for entry in shards_value {
            let next_segment_id = entry
                .get("next_segment_id")
                .and_then(Value::as_i64)
                .ok_or("missing next_segment_id")? as u64;
            let mut segments = Vec::new();
            for seg in entry
                .get("segments")
                .and_then(Value::as_array)
                .ok_or("missing segments array")?
            {
                let field_u64 = |key: &str| -> Result<u64, String> {
                    seg.get(key)
                        .and_then(Value::as_i64)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("segment missing {key}"))
                };
                segments.push(SegmentMeta {
                    file: seg
                        .get("file")
                        .and_then(Value::as_str)
                        .ok_or("segment missing file")?
                        .to_string(),
                    docs: field_u64("docs")?,
                    bytes: field_u64("bytes")?,
                    crc: field_u64("crc")? as u32,
                    min_ordinal: field_u64("min_ordinal")?,
                    max_ordinal: field_u64("max_ordinal")?,
                });
            }
            shards.push(ShardManifest {
                segments,
                next_segment_id,
            });
        }
        Ok(Manifest {
            shard_count,
            shards,
        })
    }
}

/// Removes segment files in `shard_dir` that the shard manifest does
/// not name (crash leftovers and compacted-away inputs). WAL and
/// non-segment files are untouched. Best-effort: deletion failures are
/// ignored — an orphan is re-swept next time.
pub fn sweep_orphans(shard_dir: &Path, shard: &ShardManifest) {
    let Ok(entries) = std::fs::read_dir(shard_dir) else {
        return;
    };
    let live: Vec<&str> = shard.segments.iter().map(|s| s.file.as_str()).collect();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".seg") && !live.contains(&name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// File name for segment number `id` (zero-padded so lexicographic
/// order matches numeric order in directory listings).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

/// Shard subdirectory name inside the storage directory.
pub fn shard_dir_name(index: usize) -> String {
    format!("shard-{index}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "create-manifest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        let mut manifest = Manifest::new(2);
        manifest.shards[0].segments.push(SegmentMeta {
            file: segment_file_name(0),
            docs: 10,
            bytes: 2048,
            crc: 0xdead_beef,
            min_ordinal: 0,
            max_ordinal: 18,
        });
        manifest.shards[0].next_segment_id = 1;
        manifest.shards[1].next_segment_id = 0;
        manifest
    }

    #[test]
    fn store_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let manifest = sample();
        manifest.store(&dir).unwrap();
        let loaded = Manifest::load(&dir).unwrap().expect("manifest present");
        assert_eq!(loaded, manifest);
        assert!(!dir.join(MANIFEST_TMP).exists(), "tmp file cleaned by rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = temp_dir("missing");
        assert!(Manifest::load(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_manifest_is_corrupt_not_io() {
        let dir = temp_dir("garbage");
        std::fs::write(dir.join(MANIFEST_FILE), b"not json {{{").unwrap();
        match Manifest::load(&dir) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swap_replaces_previous_manifest() {
        let dir = temp_dir("swap");
        let mut manifest = sample();
        manifest.store(&dir).unwrap();
        manifest.shards[1].segments.push(SegmentMeta {
            file: segment_file_name(0),
            docs: 4,
            bytes: 512,
            crc: 1,
            min_ordinal: 19,
            max_ordinal: 22,
        });
        manifest.shards[1].next_segment_id = 1;
        manifest.store(&dir).unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_unnamed_segments() {
        let dir = temp_dir("sweep");
        let manifest = sample();
        std::fs::write(dir.join(segment_file_name(0)), b"live").unwrap();
        std::fs::write(dir.join(segment_file_name(7)), b"orphan").unwrap();
        std::fs::write(dir.join("wal.log"), b"wal").unwrap();
        sweep_orphans(&dir, &manifest.shards[0]);
        assert!(dir.join(segment_file_name(0)).exists());
        assert!(!dir.join(segment_file_name(7)).exists());
        assert!(dir.join("wal.log").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
