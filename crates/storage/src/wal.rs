//! The per-shard write-ahead log.
//!
//! Every acknowledged write appends one framed record *before* the
//! in-memory apply: `[payload len: u32 LE][crc32(payload): u32 LE]
//! [payload]`, followed by an fsync. Recovery replays records in append
//! order and stops at the first frame that is short, overlong, or fails
//! its checksum — the torn tail a crash mid-append leaves behind — and
//! truncates the file there so the log is clean for new appends.
//! Everything before the torn frame was acknowledged and is replayed;
//! the torn frame itself was never acknowledged (the fsync hadn't
//! returned), so dropping it loses no acknowledged write.

use crate::checksum::crc32;
use crate::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header: 4-byte length + 4-byte CRC.
const FRAME_HEADER: usize = 8;
/// A single WAL payload is bounded far above any real record (reports
/// are a few KiB); anything larger is a corrupt length field.
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// An open write-ahead log, positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes of valid framed records currently in the file.
    len: u64,
    /// Appends since the last [`Wal::sync`].
    dirty: bool,
}

/// The result of replaying a WAL file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Acknowledged record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of valid frames (the replay horizon).
    pub valid_len: u64,
    /// Bytes discarded past the horizon (0 for a clean log).
    pub truncated_bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scanning existing
    /// frames and truncating any torn tail so the file ends on a record
    /// boundary. Returns the log plus the replayable records.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalReplay), StorageError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(StorageError::io(&path))?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(StorageError::io(&path))?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0)).map_err(StorageError::io(&path))?;
        file.read_to_end(&mut bytes).map_err(StorageError::io(&path))?;
        let replay = Self::replay_bytes(&bytes);
        if replay.truncated_bytes > 0 {
            file.set_len(replay.valid_len).map_err(StorageError::io(&path))?;
            file.sync_data().map_err(StorageError::io(&path))?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))
            .map_err(StorageError::io(&path))?;
        let wal = Wal {
            file,
            len: replay.valid_len,
            path,
            dirty: false,
        };
        Ok((wal, replay))
    }

    /// Parses framed records out of a raw WAL image, stopping at the
    /// first torn or corrupt frame.
    pub fn replay_bytes(bytes: &[u8]) -> WalReplay {
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            let Some(header) = bytes.get(pos..pos + FRAME_HEADER) else {
                break;
            };
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                break;
            }
            let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize)
            else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            pos += FRAME_HEADER + len as usize;
        }
        WalReplay {
            records,
            valid_len: pos as u64,
            truncated_bytes: (bytes.len() - pos) as u64,
        }
    }

    /// Appends one record (no fsync — call [`Wal::sync`] before
    /// acknowledging the write). Returns the framed size in bytes.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(StorageError::io(&self.path))?;
        self.len += frame.len() as u64;
        self.dirty = true;
        Ok(frame.len() as u64)
    }

    /// Fsyncs pending appends; the durability point for every record
    /// appended since the last sync. No-op when nothing is pending.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if !self.dirty {
            return Ok(());
        }
        self.file.sync_data().map_err(StorageError::io(&self.path))?;
        self.dirty = false;
        Ok(())
    }

    /// Discards every record — called after a seal makes the logged
    /// writes durable in a segment. The truncation is fsynced so a
    /// crash cannot resurrect sealed records.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.file.set_len(0).map_err(StorageError::io(&self.path))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(StorageError::io(&self.path))?;
        self.file.sync_data().map_err(StorageError::io(&self.path))?;
        self.len = 0;
        self.dirty = false;
        Ok(())
    }

    /// Bytes of framed records currently in the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "create-wal-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"three").unwrap();
            wal.sync().unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(wal.len(), replay.valid_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"first record").unwrap();
            wal.append(b"second record").unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_frame = FRAME_HEADER + b"first record".len();
        // Cut the file anywhere inside the second frame: the first
        // record must survive, the torn one must be dropped and the
        // file truncated back to the boundary.
        for cut in first_frame + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records, vec![b"first record".to_vec()], "cut {cut}");
            assert_eq!(replay.valid_len, first_frame as u64);
            assert!(replay.truncated_bytes > 0);
            assert_eq!(wal.len(), first_frame as u64);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                first_frame as u64,
                "file truncated to the last clean boundary at cut {cut}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"flipped").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
        assert!(replay.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn absurd_length_field_is_a_torn_frame() {
        let path = temp_path("length");
        let _ = std::fs::remove_file(&path);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_len, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_clears_records_and_new_appends_survive() {
        let path = temp_path("reset");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"sealed away").unwrap();
            wal.sync().unwrap();
            wal.reset().unwrap();
            assert!(wal.is_empty());
            wal.append(b"fresh").unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payloads_are_legal() {
        let path = temp_path("empty");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"").unwrap();
            wal.append(b"x").unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![Vec::new(), b"x".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }
}
