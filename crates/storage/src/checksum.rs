//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Every durable artifact — WAL records, segment blocks, segment
//! footers — carries a CRC so recovery can distinguish a torn write
//! (expected after a crash; truncate and continue) from silent
//! corruption (refuse to serve wrong data).

/// The reflected IEEE polynomial, as used by zlib/PNG/Ethernet.
const POLY: u32 = 0xedb8_8320;

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k]` advances a byte through `k` additional zero
/// bytes. Processing eight input bytes per iteration roughly
/// quadruples throughput over the single-table loop, which matters
/// because cold open CRC-checks every sealed segment byte (footer plus
/// per-block checksums — two passes over the file).
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for i in 0..256usize {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            tables[0][i] = crc;
        }
        for i in 0..256usize {
            let mut crc = tables[0][i];
            for t in 1..8 {
                crc = (crc >> 8) ^ tables[0][(crc & 0xff) as usize];
                tables[t][i] = crc;
            }
        }
        tables
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = tables();
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][((lo >> 24) & 0xff) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][((hi >> 24) & 0xff) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn sliced_path_agrees_with_byte_at_a_time() {
        // Cross-check the 8-byte fast path against the scalar tail loop
        // at every alignment and length straddling the chunk boundary.
        let data: Vec<u8> = (0u32..64).map(|i| (i * 37 + 11) as u8).collect();
        let scalar = |bytes: &[u8]| {
            let t = tables();
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
            }
            !crc
        };
        for start in 0..9 {
            for end in start..data.len() {
                assert_eq!(crc32(&data[start..end]), scalar(&data[start..end]));
            }
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"a write-ahead log record".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit}");
            }
        }
    }
}
