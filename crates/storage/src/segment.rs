//! Immutable on-disk segment files.
//!
//! A segment is the durable form of a sealed memtable slice: every
//! document's stored fields (the WAL-shaped JSON payload), a directory
//! of `(ordinal, doc id)` entries, and the codec-encoded postings for
//! the same doc range. Layout:
//!
//! ```text
//! magic "CSEG" | format u32 LE
//! directory region: block framing, uncompressed content is
//!     doc_count varint, then per doc
//!     ordinal varint | id_len varint | id bytes
//! stored-fields region: block framing, content is per doc
//!     payload_len varint | payload bytes
//! postings region:      block framing
//! facets region:        block framing (format >= 3 only)
//! footer: crc32(everything above) u32 LE | magic "GESC"
//! ```
//!
//! **Format history.** Format 2 had three regions. Format 3 appends a
//! fourth region holding the facet-bitmap tail for the segment's doc
//! range (opaque here; `create-index::facets` encodes it). Readers
//! accept both: a format-2 file simply yields empty facet bytes and the
//! caller rebuilds facets from the stored payloads, so pre-upgrade data
//! directories open unchanged. Writers always emit format 3
//! ([`write_segment_legacy_v2`] exists for tests and migration smokes).
//!
//! Block framing is `block_count varint`, then per block
//! `uncompressed_len varint | compressed_len varint | crc32(compressed)
//! u32 LE | compressed bytes`. Blocks cover at most [`BLOCK_TARGET`]
//! uncompressed bytes so a single flipped bit is localized to one
//! block's CRC. The footer CRC guards the framing itself; it is also
//! recorded in the manifest so recovery can detect a swapped or
//! rolled-back segment file without reading it fully. Files are written
//! once, fsynced, and never modified.
//!
//! The directory region exists so recovery can decide *whether* it
//! needs a segment's payloads without decompressing them: when the
//! JSONL document store already holds every doc id the directory lists,
//! [`read_segment_index`] skips the stored-fields region entirely
//! (its block CRCs are still verified) and cold open pays only for the
//! directory, the postings, and one sequential file read.

use crate::block;
use crate::checksum::crc32;
use crate::StorageError;
use create_util::varint;
use std::fs::File;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"CSEG";
const FOOTER_MAGIC: &[u8; 4] = b"GESC";
/// Current segment format: four regions (facets appended).
pub const FORMAT: u32 = 3;
/// The previous three-region format, still readable.
pub const FORMAT_V2: u32 = 2;
/// Maximum uncompressed bytes per block.
pub const BLOCK_TARGET: usize = 256 * 1024;

/// One document's durable record inside a segment: the global ingest
/// ordinal, the external doc id, and an opaque payload (the same JSON
/// shape the WAL logs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDoc {
    pub ordinal: u64,
    pub id: String,
    pub payload: Vec<u8>,
}

/// The logical content of a segment file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentData {
    /// Documents in ingest order; segment-local doc ids are positions.
    pub docs: Vec<StoredDoc>,
    /// Codec-encoded postings for exactly these documents (opaque to
    /// the storage layer; `create-index` encodes and decodes it).
    pub postings: Vec<u8>,
    /// Facet-bitmap tail for these documents (opaque; empty when the
    /// file predates format 3).
    pub facets: Vec<u8>,
}

/// One directory entry: everything known about a stored document
/// without touching the stored-fields region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocEntry {
    pub ordinal: u64,
    pub id: String,
}

/// A segment read without its payloads: the doc directory plus the
/// decoded postings. The stored-fields blocks were CRC-verified but
/// never decompressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIndex {
    pub docs: Vec<DocEntry>,
    pub postings: Vec<u8>,
    /// Facet-bitmap tail (empty for format-2 files).
    pub facets: Vec<u8>,
}

/// Size and checksum of a written segment file, as the manifest records
/// them.
#[derive(Debug, Clone, Copy)]
pub struct SegmentFileInfo {
    pub bytes: u64,
    pub crc: u32,
}

/// Serializes `data`, writes it to `path`, and fsyncs the file. The
/// file only becomes live once the manifest names it.
pub fn write_segment(path: &Path, data: &SegmentData) -> Result<SegmentFileInfo, StorageError> {
    write_segment_format(path, data, FORMAT)
}

/// Writes the legacy three-region format-2 layout (facet bytes are
/// dropped). Kept so tests and the migration smoke can fabricate
/// pre-upgrade data directories; production sealing always writes
/// format 3.
pub fn write_segment_legacy_v2(
    path: &Path,
    data: &SegmentData,
) -> Result<SegmentFileInfo, StorageError> {
    write_segment_format(path, data, FORMAT_V2)
}

fn write_segment_format(
    path: &Path,
    data: &SegmentData,
    format: u32,
) -> Result<SegmentFileInfo, StorageError> {
    let mut directory = Vec::new();
    varint::write_u64(&mut directory, data.docs.len() as u64);
    for doc in &data.docs {
        varint::write_u64(&mut directory, doc.ordinal);
        varint::write_u64(&mut directory, doc.id.len() as u64);
        directory.extend_from_slice(doc.id.as_bytes());
    }
    let mut stored = Vec::new();
    for doc in &data.docs {
        varint::write_u64(&mut stored, doc.payload.len() as u64);
        stored.extend_from_slice(&doc.payload);
    }

    let mut image = Vec::with_capacity(stored.len() / 2 + data.postings.len() / 2 + 64);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&format.to_le_bytes());
    write_region(&mut image, &directory);
    write_region(&mut image, &stored);
    write_region(&mut image, &data.postings);
    if format >= FORMAT {
        write_region(&mut image, &data.facets);
    }
    let file_crc = crc32(&image);
    image.extend_from_slice(&file_crc.to_le_bytes());
    image.extend_from_slice(FOOTER_MAGIC);

    let mut file = File::create(path).map_err(StorageError::io(path))?;
    file.write_all(&image).map_err(StorageError::io(path))?;
    file.sync_all().map_err(StorageError::io(path))?;
    Ok(SegmentFileInfo {
        bytes: image.len() as u64,
        crc: file_crc,
    })
}

fn write_region(out: &mut Vec<u8>, payload: &[u8]) {
    let blocks: Vec<&[u8]> = if payload.is_empty() {
        Vec::new()
    } else {
        payload.chunks(BLOCK_TARGET).collect()
    };
    varint::write_u64(out, blocks.len() as u64);
    for chunk in blocks {
        let packed = block::compress(chunk);
        varint::write_u64(out, chunk.len() as u64);
        varint::write_u64(out, packed.len() as u64);
        out.extend_from_slice(&crc32(&packed).to_le_bytes());
        out.extend_from_slice(&packed);
    }
}

/// Validated segment framing: the byte ranges of the regions, ready to
/// be decompressed (or merely CRC-checked) independently. `facets` is
/// absent for format-2 files.
struct Frame<'a> {
    directory: Region<'a>,
    stored: Region<'a>,
    postings: Region<'a>,
    facets: Option<Region<'a>>,
}

struct Region<'a> {
    body: &'a [u8],
    start: usize,
}

fn frame<'a>(path: &Path, bytes: &'a [u8]) -> Result<Frame<'a>, StorageError> {
    let corrupt = |message: &str| StorageError::Corrupt {
        path: path.to_path_buf(),
        message: message.to_string(),
    };
    if bytes.len() < 8 + 8 || &bytes[0..4] != MAGIC {
        return Err(corrupt("missing segment magic"));
    }
    let format = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if format != FORMAT && format != FORMAT_V2 {
        return Err(corrupt(&format!("unsupported segment format {format}")));
    }
    let footer_at = bytes.len() - 8;
    if &bytes[footer_at + 4..] != FOOTER_MAGIC {
        return Err(corrupt("missing footer magic"));
    }
    let declared_crc =
        u32::from_le_bytes(bytes[footer_at..footer_at + 4].try_into().expect("4 bytes"));
    if crc32(&bytes[..footer_at]) != declared_crc {
        return Err(corrupt("footer checksum mismatch"));
    }

    let body = &bytes[8..footer_at];
    let mut pos = 0usize;
    let mut next_region = || -> Result<Region<'a>, StorageError> {
        let start = pos;
        skip_region(body, &mut pos).map_err(|m| corrupt(m))?;
        Ok(Region { body, start })
    };
    let directory = next_region()?;
    let stored = next_region()?;
    let postings = next_region()?;
    let facets = if format >= FORMAT {
        Some(next_region()?)
    } else {
        None
    };
    if pos != body.len() {
        return Err(corrupt("trailing bytes after final region"));
    }
    Ok(Frame {
        directory,
        stored,
        postings,
        facets,
    })
}

/// Reads and verifies a segment file end-to-end: footer CRC, per-block
/// CRCs, block decompression, and stored-doc framing. Any mismatch is
/// [`StorageError::Corrupt`] — a sealed segment was fsynced before the
/// manifest named it, so unlike a WAL tail, damage here is never an
/// expected crash artifact.
pub fn read_segment(path: &Path) -> Result<SegmentData, StorageError> {
    let bytes = std::fs::read(path).map_err(StorageError::io(path))?;
    let corrupt = |message: &str| StorageError::Corrupt {
        path: path.to_path_buf(),
        message: message.to_string(),
    };
    let regions = frame(path, &bytes)?;
    let directory = decompress_region(&regions.directory).map_err(|m| corrupt(m))?;
    let stored = decompress_region(&regions.stored).map_err(|m| corrupt(m))?;
    let postings = decompress_region(&regions.postings).map_err(|m| corrupt(m))?;
    let facets = match &regions.facets {
        Some(region) => decompress_region(region).map_err(|m| corrupt(m))?,
        None => Vec::new(),
    };

    let entries = parse_directory(&directory).map_err(|m| corrupt(m))?;
    let mut docs = Vec::with_capacity(entries.len());
    let mut at = 0usize;
    for entry in entries {
        let len = varint::read_u64(&stored, &mut at).ok_or_else(|| corrupt("doc payload length"))?
            as usize;
        let payload = stored
            .get(at..at + len)
            .ok_or_else(|| corrupt("doc payload past end"))?
            .to_vec();
        at += len;
        docs.push(StoredDoc {
            ordinal: entry.ordinal,
            id: entry.id,
            payload,
        });
    }
    if at != stored.len() {
        return Err(corrupt("trailing bytes after stored docs"));
    }
    Ok(SegmentData {
        docs,
        postings,
        facets,
    })
}

/// Reads a segment's doc directory and postings, verifying every block
/// CRC (including the stored-fields blocks) but decompressing only what
/// it returns. This is the cold-open fast path: when the document store
/// already holds every id the directory lists, the payload bytes are
/// never needed.
pub fn read_segment_index(path: &Path) -> Result<SegmentIndex, StorageError> {
    let bytes = std::fs::read(path).map_err(StorageError::io(path))?;
    let corrupt = |message: &str| StorageError::Corrupt {
        path: path.to_path_buf(),
        message: message.to_string(),
    };
    let regions = frame(path, &bytes)?;
    verify_region(&regions.stored).map_err(|m| corrupt(m))?;
    let directory = decompress_region(&regions.directory).map_err(|m| corrupt(m))?;
    let postings = decompress_region(&regions.postings).map_err(|m| corrupt(m))?;
    let facets = match &regions.facets {
        Some(region) => decompress_region(region).map_err(|m| corrupt(m))?,
        None => Vec::new(),
    };
    let docs = parse_directory(&directory).map_err(|m| corrupt(m))?;
    Ok(SegmentIndex {
        docs,
        postings,
        facets,
    })
}

fn parse_directory(directory: &[u8]) -> Result<Vec<DocEntry>, &'static str> {
    let mut at = 0usize;
    let count = varint::read_u64(directory, &mut at).ok_or("doc count")? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let ordinal = varint::read_u64(directory, &mut at).ok_or("doc ordinal")?;
        let id_len = varint::read_u64(directory, &mut at).ok_or("doc id length")? as usize;
        let id_bytes = directory.get(at..at + id_len).ok_or("doc id past end")?;
        at += id_len;
        let id = std::str::from_utf8(id_bytes)
            .map_err(|_| "doc id not utf-8")?
            .to_string();
        entries.push(DocEntry { ordinal, id });
    }
    if at != directory.len() {
        return Err("trailing bytes after directory");
    }
    Ok(entries)
}

/// Walks one region's blocks, calling `on_block` with each verified
/// compressed block and its uncompressed length.
fn walk_region(
    region: &Region<'_>,
    mut on_block: impl FnMut(&[u8], usize) -> Result<(), &'static str>,
) -> Result<(), &'static str> {
    let body = region.body;
    let mut pos = region.start;
    let blocks = varint::read_u64(body, &mut pos).ok_or("region block count")? as usize;
    for _ in 0..blocks {
        let uncompressed = varint::read_u64(body, &mut pos).ok_or("block uncompressed length")? as usize;
        let compressed = varint::read_u64(body, &mut pos).ok_or("block compressed length")? as usize;
        let crc_bytes = body.get(pos..pos + 4).ok_or("block checksum")?;
        let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        pos += 4;
        let packed = body.get(pos..pos + compressed).ok_or("block past end")?;
        pos += compressed;
        if crc32(packed) != declared {
            return Err("block checksum mismatch");
        }
        if uncompressed > BLOCK_TARGET {
            return Err("block larger than target");
        }
        on_block(packed, uncompressed)?;
    }
    Ok(())
}

/// Used by `frame` to find region boundaries without verifying content.
fn skip_region(body: &[u8], pos: &mut usize) -> Result<(), &'static str> {
    let blocks = varint::read_u64(body, pos).ok_or("region block count")? as usize;
    for _ in 0..blocks {
        let _ = varint::read_u64(body, pos).ok_or("block uncompressed length")?;
        let compressed = varint::read_u64(body, pos).ok_or("block compressed length")? as usize;
        *pos += 4; // block CRC
        if body.get(*pos..*pos + compressed).is_none() {
            return Err("block past end");
        }
        *pos += compressed;
    }
    Ok(())
}

fn decompress_region(region: &Region<'_>) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::new();
    walk_region(region, |packed, uncompressed| {
        let unpacked =
            block::decompress(packed, uncompressed).map_err(|_| "block decompression failed")?;
        out.extend_from_slice(&unpacked);
        Ok(())
    })?;
    Ok(out)
}

fn verify_region(region: &Region<'_>) -> Result<(), &'static str> {
    walk_region(region, |_, _| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "create-seg-{tag}-{}-{:?}.seg",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample(docs: usize) -> SegmentData {
        SegmentData {
            docs: (0..docs)
                .map(|i| StoredDoc {
                    ordinal: 100 + i as u64,
                    id: format!("pmid:{i}"),
                    payload: format!(
                        "{{\"id\":\"pmid:{i}\",\"title\":\"fever case {i}\",\"body\":\"{}\"}}",
                        "lorem ipsum dolor ".repeat(40)
                    )
                    .into_bytes(),
                })
                .collect(),
            postings: (0..9000u32).flat_map(|v| (v % 251).to_le_bytes()).collect(),
            facets: (0..700u32).flat_map(|v| (v % 13).to_le_bytes()).collect(),
        }
    }

    #[test]
    fn legacy_v2_files_open_with_empty_facets() {
        let path = temp_path("legacyv2");
        let data = sample(12);
        write_segment_legacy_v2(&path, &data).unwrap();
        let back = read_segment(&path).unwrap();
        assert_eq!(back.docs, data.docs);
        assert_eq!(back.postings, data.postings);
        assert!(back.facets.is_empty(), "v2 files carry no facet region");
        let index = read_segment_index(&path).unwrap();
        assert!(index.facets.is_empty());
        assert_eq!(index.postings, data.postings);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_path("roundtrip");
        let data = sample(25);
        let info = write_segment(&path, &data).unwrap();
        assert_eq!(info.bytes, std::fs::metadata(&path).unwrap().len());
        let back = read_segment(&path).unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_segment_round_trips() {
        let path = temp_path("emptyseg");
        let data = SegmentData::default();
        write_segment(&path, &data).unwrap();
        assert_eq!(read_segment(&path).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn index_read_skips_payloads_but_matches_directory() {
        let path = temp_path("indexread");
        let data = sample(40);
        write_segment(&path, &data).unwrap();
        let index = read_segment_index(&path).unwrap();
        assert_eq!(index.postings, data.postings);
        assert_eq!(index.docs.len(), data.docs.len());
        for (entry, doc) in index.docs.iter().zip(&data.docs) {
            assert_eq!(entry.ordinal, doc.ordinal);
            assert_eq!(entry.id, doc.id);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multi_block_payload_round_trips() {
        let path = temp_path("multiblock");
        let mut data = sample(2);
        // Force several stored-field blocks.
        data.docs[0].payload = b"x".repeat(BLOCK_TARGET * 2 + 1234);
        write_segment(&path, &data).unwrap();
        assert_eq!(read_segment(&path).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stored_fields_compress() {
        let path = temp_path("ratio");
        let data = sample(200);
        let raw: usize = data.docs.iter().map(|d| d.payload.len()).sum();
        let info = write_segment(&path, &data).unwrap();
        assert!(
            (info.bytes as usize) < raw / 2,
            "repetitive stored fields should compress >2x: {} of {raw}",
            info.bytes
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn any_corrupt_byte_is_detected() {
        let path = temp_path("corrupt");
        write_segment(&path, &sample(10)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of positions across the file; every
        // flip must surface as Corrupt, never as wrong data or a panic.
        // Both readers must catch it: the index read skips payload
        // decompression but still CRC-checks every block.
        for at in (0..clean.len()).step_by(97).chain([clean.len() - 1]) {
            let mut bad = clean.clone();
            bad[at] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(read_segment(&path), Err(StorageError::Corrupt { .. })),
                "flip at {at} was not detected by read_segment"
            );
            assert!(
                matches!(read_segment_index(&path), Err(StorageError::Corrupt { .. })),
                "flip at {at} was not detected by read_segment_index"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_corrupt() {
        let path = temp_path("truncated");
        write_segment(&path, &sample(10)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for keep in [0, 3, 7, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                matches!(read_segment(&path), Err(StorageError::Corrupt { .. })),
                "kept {keep} bytes"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
