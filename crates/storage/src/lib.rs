//! Durable storage engine for the CREATe reproduction.
//!
//! The engine gives the in-memory shards a Lucene-style persistence
//! story with three moving parts:
//!
//! * **Write-ahead log** ([`wal`]) — every acknowledged write is
//!   appended as a length-prefixed, checksummed record and fsynced
//!   *before* the in-memory apply, so a crash loses nothing that was
//!   acknowledged. Recovery cost is O(unflushed tail), not O(corpus).
//! * **Segments** ([`segment`]) — a flush seals the memtable slice
//!   accumulated since the last seal into an immutable, block-compressed
//!   file: stored fields plus delta/varint postings, every block CRC'd,
//!   the whole file footer-checksummed.
//! * **Manifest** ([`manifest`]) — the atomically-swapped (write tmp +
//!   fsync + rename) registry of live segments. A segment that the
//!   manifest does not name does not exist; orphans are swept.
//!
//! Crash recovery = manifest segments (in ingest order) + WAL tail
//! replay with torn-record truncation. Rankings after recovery are
//! bit-identical to a process that never crashed, because segments
//! preserve global ingest ordinals and per-shard doc-id order.
//!
//! On-disk layout, relative to the engine's data directory:
//!
//! ```text
//! storage/
//!   MANIFEST            atomically-swapped segment registry (JSON)
//!   shard-<i>/
//!     wal.log           per-shard write-ahead log
//!     seg-NNNNNN.seg    immutable sealed segments
//! ```
//!
//! This crate is storage-only: it knows bytes, files, and checksums.
//! What goes *into* a WAL record or a stored-field payload is decided
//! by `create-core`; how postings bytes encode an index tail is decided
//! by `create-index`'s codec.

pub mod block;
pub mod checksum;
pub mod manifest;
pub mod segment;
pub mod wal;

pub use manifest::{Manifest, SegmentMeta, ShardManifest};
pub use segment::{SegmentData, SegmentFileInfo, StoredDoc};
pub use wal::{Wal, WalReplay};

use std::path::{Path, PathBuf};

/// Storage subdirectory name inside a data directory.
pub const STORAGE_DIR: &str = "storage";
/// WAL file name inside a shard's storage directory.
pub const WAL_FILE: &str = "wal.log";

/// A durable-storage failure, split so callers can react differently:
/// I/O errors are environmental (disk full, permissions) and often
/// transient; corruption means bytes on disk contradict their checksums
/// and the engine refuses to serve wrong data.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying filesystem operation failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// On-disk bytes failed validation (checksum, framing, or format).
    Corrupt { path: PathBuf, message: String },
}

impl StorageError {
    /// Adapter for `map_err`: tags an `io::Error` with the path it
    /// happened on.
    pub fn io(path: impl AsRef<Path>) -> impl FnOnce(std::io::Error) -> StorageError {
        let path = path.as_ref().to_path_buf();
        move |source| StorageError::Io { path, source }
    }

    /// True when the error is corruption rather than an I/O failure.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::Corrupt { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { path, source } => {
                write!(f, "storage I/O error at {}: {source}", path.display())
            }
            StorageError::Corrupt { path, message } => {
                write!(f, "storage corruption at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Corrupt { .. } => None,
        }
    }
}
