//! Block compression for segment files.
//!
//! A small, std-only byte-oriented LZ77 (Snappy/LZ4 family): greedy
//! hash-table matching over a 64 KiB window, emitting literal runs and
//! back-references as tagged tokens. Stored-field and postings blocks
//! compress well under it (JSON keys and delta-varint runs repeat
//! heavily); truly incompressible blocks are stored raw behind a
//! one-byte header so compression never inflates a block by more than
//! that byte.
//!
//! Token stream (after the header byte):
//!
//! * `0x00, len-1 varint, bytes…` — a literal run;
//! * `0x01, len-4 varint, dist varint` — copy `len` bytes from `dist`
//!   bytes back (overlapping copies allowed, RLE-style).
//!
//! The format is self-terminating: decompression runs until the
//! declared uncompressed length is produced and rejects anything that
//! would read past either buffer, so a corrupt block fails loudly
//! instead of producing garbage.

use create_util::varint;

/// Header byte: the block is stored raw (incompressible).
const RAW: u8 = 0;
/// Header byte: the block is an LZ token stream.
const COMPRESSED: u8 = 1;

const MIN_MATCH: usize = 4;
const MAX_DISTANCE: usize = 1 << 16;
const HASH_BITS: u32 = 14;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, preferring the raw encoding when matching finds
/// nothing to exploit.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(COMPRESSED);
    let mut heads = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = heads[h];
        heads[h] = i;
        let matched = candidate != usize::MAX
            && i - candidate <= MAX_DISTANCE
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
        if !matched {
            i += 1;
            continue;
        }
        // Extend the match as far as it goes.
        let mut len = MIN_MATCH;
        while i + len < input.len() && input[candidate + len] == input[i + len] {
            len += 1;
        }
        flush_literals(&mut out, &input[literal_start..i]);
        out.push(0x01);
        varint::write_u64(&mut out, (len - MIN_MATCH) as u64);
        varint::write_u64(&mut out, (i - candidate) as u64);
        // Seed the table through the matched region (sparsely: every
        // other position keeps the cost linear without hurting ratio
        // much on this workload).
        let end = (i + len).min(input.len().saturating_sub(MIN_MATCH - 1));
        let mut j = i + 1;
        while j < end {
            heads[hash4(&input[j..])] = j;
            j += 2;
        }
        i += len;
        literal_start = i;
    }
    flush_literals(&mut out, &input[literal_start..]);
    if out.len() >= input.len() + 1 {
        let mut raw = Vec::with_capacity(input.len() + 1);
        raw.push(RAW);
        raw.extend_from_slice(input);
        return raw;
    }
    out
}

fn flush_literals(out: &mut Vec<u8>, literals: &[u8]) {
    if literals.is_empty() {
        return;
    }
    out.push(0x00);
    varint::write_u64(out, (literals.len() - 1) as u64);
    out.extend_from_slice(literals);
}

/// Decompression failure: the token stream is inconsistent with the
/// declared uncompressed length (i.e. the block is corrupt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCorrupt(pub &'static str);

impl std::fmt::Display for BlockCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed block: {}", self.0)
    }
}

impl std::error::Error for BlockCorrupt {}

/// Decompresses a block produced by [`compress`] into exactly
/// `uncompressed_len` bytes.
pub fn decompress(block: &[u8], uncompressed_len: usize) -> Result<Vec<u8>, BlockCorrupt> {
    let (&header, body) = block.split_first().ok_or(BlockCorrupt("empty block"))?;
    match header {
        RAW => {
            if body.len() != uncompressed_len {
                return Err(BlockCorrupt("raw block length mismatch"));
            }
            Ok(body.to_vec())
        }
        COMPRESSED => {
            let mut out = Vec::with_capacity(uncompressed_len);
            let mut pos = 0usize;
            while pos < body.len() {
                let tag = body[pos];
                pos += 1;
                match tag {
                    0x00 => {
                        let len = varint::read_u64(body, &mut pos)
                            .ok_or(BlockCorrupt("literal length"))?
                            as usize
                            + 1;
                        let run = body
                            .get(pos..pos + len)
                            .ok_or(BlockCorrupt("literal run past end"))?;
                        out.extend_from_slice(run);
                        pos += len;
                    }
                    0x01 => {
                        let len = varint::read_u64(body, &mut pos)
                            .ok_or(BlockCorrupt("match length"))?
                            as usize
                            + MIN_MATCH;
                        let dist = varint::read_u64(body, &mut pos)
                            .ok_or(BlockCorrupt("match distance"))?
                            as usize;
                        if dist == 0 || dist > out.len() {
                            return Err(BlockCorrupt("match distance out of range"));
                        }
                        // Byte-at-a-time copy keeps overlapping
                        // (RLE-style) references correct.
                        let start = out.len() - dist;
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    }
                    _ => return Err(BlockCorrupt("unknown token tag")),
                }
                if out.len() > uncompressed_len {
                    return Err(BlockCorrupt("output overruns declared length"));
                }
            }
            if out.len() != uncompressed_len {
                return Err(BlockCorrupt("output shorter than declared length"));
            }
            Ok(out)
        }
        _ => Err(BlockCorrupt("unknown block header")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_util::Rng;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed, data.len()).expect("decompress");
        assert_eq!(unpacked, data);
    }

    #[test]
    fn round_trips_empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn compresses_repetitive_input() {
        let data: Vec<u8> = b"{\"_id\":\"pmid:1\",\"title\":\"fever\"}\n"
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "repetitive JSON should compress >4x, got {} of {}",
            packed.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn handles_overlapping_rle_matches() {
        let data = vec![0x41u8; 10_000];
        let packed = compress(&data);
        assert!(packed.len() < 64);
        round_trip(&data);
    }

    #[test]
    fn random_input_falls_back_to_raw() {
        let mut rng = Rng::seed_from_u64(7);
        let data: Vec<u8> = (0..4096).map(|_| rng.below(256) as u8).collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + 1, "raw fallback caps inflation");
        round_trip(&data);
    }

    #[test]
    fn seeded_fuzz_round_trips() {
        let mut rng = Rng::seed_from_u64(0xc0ffee);
        for case in 0..50 {
            let len = rng.below(5000);
            // Mix of runs and noise to exercise both token kinds.
            let mut data = Vec::with_capacity(len);
            while data.len() < len {
                if rng.below(2) == 0 {
                    let run = rng.range(1, 40);
                    let byte = rng.below(8) as u8;
                    data.extend(std::iter::repeat(byte).take(run.min(len - data.len())));
                } else {
                    data.push(rng.below(256) as u8);
                }
            }
            let packed = compress(&data);
            let unpacked = decompress(&packed, data.len()).expect("decompress");
            assert_eq!(unpacked, data, "case {case}");
        }
    }

    #[test]
    fn corrupt_blocks_fail_loudly() {
        let data: Vec<u8> = b"abcdabcdabcdabcdabcdabcd".repeat(20);
        let packed = compress(&data);
        // Wrong declared length.
        assert!(decompress(&packed, data.len() + 1).is_err());
        assert!(decompress(&packed, data.len().saturating_sub(1)).is_err());
        // Truncated stream.
        assert!(decompress(&packed[..packed.len() / 2], data.len()).is_err());
        // Unknown header.
        let mut bad = packed.clone();
        bad[0] = 9;
        assert!(decompress(&bad, data.len()).is_err());
    }
}
