//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction is seeded: the synthetic corpus, the train/test
//! splits, SGD example shuffling, and the benchmark workloads all derive from
//! explicit `u64` seeds, so every experiment table can be regenerated
//! bit-for-bit. The generator is xoshiro256++ seeded through SplitMix64,
//! which is the standard way to expand a single word into the 256-bit
//! xoshiro state without correlation artifacts.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for workload synthesis and stochastic optimization.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// document / epoch / worker its own reproducible stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below requires a positive bound");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range requires lo < hi (got {lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call for
    /// simplicity — the trainers are not bottlenecked on this).
    pub fn normal(&mut self) -> f64 {
        // Guard against log(0).
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Geometric-ish positive count: 1 + number of successes of repeated
    /// `p`-coin flips, capped at `max`. Used for "how many symptoms does
    /// this patient have" style draws.
    pub fn count_geometric(&mut self, p: f64, max: usize) -> usize {
        let mut n = 1;
        while n < max && self.chance(p) {
            n += 1;
        }
        n
    }

    /// Chooses a reference to a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Chooses an index according to non-negative weights (linear scan; the
    /// weight vectors used here are small).
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "choose_weighted requires a positive total weight"
        );
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher–Yates over an index vector; n is small in all of
        // our call sites (sentence counts, vocabulary slices).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`, computed by
    /// inverse-CDF over precomputed weights. Used for realistic term and
    /// query frequency skew.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // For the small n used in corpus generation a linear scan is fine.
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
        }
        let mut target = self.f64() * total;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            let expected = draws / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.range(5, 15);
            assert!((5..15).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from_u64(13);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = Rng::seed_from_u64(19);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[rng.zipf(20, 1.1)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[19] * 4);
    }

    #[test]
    fn choose_weighted_prefers_heavy() {
        let mut rng = Rng::seed_from_u64(23);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn count_geometric_within_bounds() {
        let mut rng = Rng::seed_from_u64(29);
        for _ in 0..1000 {
            let c = rng.count_geometric(0.5, 6);
            assert!((1..=6).contains(&c));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(31);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
