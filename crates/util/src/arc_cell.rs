//! A std-only arc-swap: an atomically publishable `Arc<T>` cell.
//!
//! The writer half of a snapshot-isolated system builds the next
//! immutable state off to the side and publishes it with [`ArcCell::store`];
//! readers grab the current state with [`ArcCell::load`], which is a
//! mutex-guarded `Arc::clone` — a handful of nanoseconds, never blocked
//! by an in-flight pipeline because the writer only takes this lock for
//! the pointer swap itself. Once loaded, a snapshot stays alive (and
//! immutable) for as long as the reader holds the `Arc`, regardless of
//! how many publishes happen in the meantime; the superseded state is
//! freed when its last reader drops it.
//!
//! `std::sync::Mutex` rather than an atomic pointer keeps this safe
//! Rust with no dependency; the critical section is two refcount ops,
//! so contention is negligible next to any real read path.

use std::sync::{Arc, Mutex};

/// An atomically swappable shared pointer (see module docs).
#[derive(Debug)]
pub struct ArcCell<T> {
    inner: Mutex<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcCell<T> {
        ArcCell {
            inner: Mutex::new(value),
        }
    }

    /// Returns the current value. Cheap: one lock + one `Arc` clone.
    ///
    /// A poisoned lock is recovered — the cell only ever holds a valid
    /// `Arc`, so the last successfully stored value is still correct.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publishes `value`, replacing the current one. Readers that
    /// already loaded the old value keep it alive until they drop it.
    pub fn store(&self, value: Arc<T>) {
        *self.inner.lock().unwrap_or_else(|p| p.into_inner()) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn old_snapshot_survives_publish() {
        let cell = ArcCell::new(Arc::new(vec![1, 2, 3]));
        let held = cell.load();
        cell.store(Arc::new(vec![9]));
        assert_eq!(*held, vec![1, 2, 3], "reader keeps its point-in-time view");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_loads_see_whole_values() {
        // Publish pairs (n, n); readers must never observe a torn pair.
        let cell = Arc::new(ArcCell::new(Arc::new((0u64, 0u64))));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for n in 1..=1000u64 {
                    cell.store(Arc::new((n, n)));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        let pair = cell.load();
                        assert_eq!(pair.0, pair.1, "torn read: {pair:?}");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
