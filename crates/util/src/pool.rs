//! A std-only scoped work-stealing thread pool.
//!
//! The batch-ingestion and batch-query paths fan CPU-bound work (CRF
//! tagging, analyzer tokenization, postings construction, BM25 scoring)
//! across cores. The build environment has no network access, so this is
//! built entirely on `std`: each worker owns a local deque and steals
//! from the global injector or from its siblings when idle.
//!
//! Scheduling order per worker: newest local task (LIFO, cache-warm) →
//! oldest injected task (FIFO, fair) → steal the oldest task from a
//! sibling (FIFO, minimizes contention on the victim's hot end).
//!
//! Two entry points cover the workspace's needs:
//!
//! * [`ThreadPool::scope`] — structured spawning of closures that borrow
//!   from the caller's stack (the rayon-style scoped API);
//! * [`ThreadPool::parallel_map`] — indexed map over a slice with
//!   self-scheduling at item granularity, results in input order.
//!
//! Determinism note: the pool never reorders *results* — `parallel_map`
//! writes each result into its input slot — so callers that shard work
//! deterministically (see `create-index`'s segment merge) observe output
//! independent of thread count and scheduling.
//!
//! Observability: when `create-obs` is built with its `enabled`
//! feature (any instrumented workspace build), every injected job is
//! wrapped with `create_obs::carry_context` so the submitting thread's
//! trace context follows the job onto the worker, and the pool
//! maintains process-wide worker-count / queue-depth gauges plus a
//! jobs-executed counter in the global registry. Stripped builds
//! (`--no-default-features`) compile all of it out.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A unit of work. The `'static` bound is erased for scoped tasks; the
/// scope guarantees the closure outlives its execution by blocking until
/// every task completes.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cached handles for the pool's registry series, shared by every pool
/// instance in the process (the series are process-wide totals).
struct PoolSeries {
    workers: std::sync::Arc<create_obs::Gauge>,
    queue_depth: std::sync::Arc<create_obs::Gauge>,
    executed: std::sync::Arc<create_obs::Counter>,
}

fn pool_series() -> Option<&'static PoolSeries> {
    if !create_obs::enabled() {
        return None;
    }
    static SERIES: OnceLock<PoolSeries> = OnceLock::new();
    Some(SERIES.get_or_init(|| PoolSeries {
        workers: create_obs::gauge(create_obs::names::POOL_WORKERS_GAUGE),
        queue_depth: create_obs::gauge(create_obs::names::POOL_QUEUE_DEPTH_GAUGE),
        executed: create_obs::counter(create_obs::names::POOL_JOBS_EXECUTED_TOTAL),
    }))
}

/// A job left the queue and is about to run on some executor (a worker
/// or a scope's drain loop).
fn note_job_executed() {
    if let Some(series) = pool_series() {
        series.queue_depth.add(-1);
        series.executed.inc();
    }
}

struct Shared {
    /// Global FIFO queue that `scope`/`parallel_map` push into.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker local deques, steal targets for idle siblings.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Wakes idle workers when work arrives or on shutdown.
    work_signal: Condvar,
    /// Guards the sleep state for `work_signal`.
    sleep_lock: Mutex<()>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops a job: own local LIFO first, then the injector, then steal
    /// FIFO from siblings.
    fn find_job(&self, worker: usize) -> Option<Job> {
        let job = self.find_job_inner(worker);
        if job.is_some() {
            note_job_executed();
        }
        job
    }

    fn find_job_inner(&self, worker: usize) -> Option<Job> {
        if let Some(job) = self.locals[worker].lock().expect("pool lock").pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("pool lock").pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.locals[victim].lock().expect("pool lock").pop_front() {
                return Some(job);
            }
        }
        None
    }
}

/// The pool. Workers live for the pool's lifetime; dropping the pool
/// joins them after draining outstanding work.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            work_signal: Condvar::new(),
            sleep_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("create-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        if let Some(series) = pool_series() {
            series.workers.add(threads as i64);
        }
        ThreadPool { shared, workers }
    }

    /// Pool sized to the machine (`available_parallelism`, min 1).
    pub fn for_machine() -> ThreadPool {
        ThreadPool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The process-wide shared pool, sized to the machine. Batch ingestion
    /// and batch search both amortize their fan-out over this instance.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(ThreadPool::for_machine)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a fire-and-forget job. Unlike [`ThreadPool::scope`] the
    /// closure must be `'static`; nothing awaits its completion, but
    /// dropping the pool drains every queued job before joining the
    /// workers (the evented server relies on this for graceful drain).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.inject(Box::new(f));
    }

    fn inject(&self, job: Job) {
        // Capture the submitter's trace context so the worker installs
        // it around the job (a no-op box-wrap in stripped builds, so
        // gate on the const feature flag instead).
        let job: Job = if create_obs::enabled() {
            Box::new(create_obs::carry_context(job))
        } else {
            job
        };
        if let Some(series) = pool_series() {
            series.queue_depth.add(1);
        }
        self.shared
            .injector
            .lock()
            .expect("pool lock")
            .push_back(job);
        self.shared.work_signal.notify_one();
    }

    /// Runs `f` with a [`Scope`] that can spawn closures borrowing from
    /// the caller's stack. Returns once `f` and every spawned task have
    /// completed. If any task panicked, the first panic is resumed on the
    /// caller's thread after the scope drains (so borrowed data is never
    /// touched after the caller unwinds).
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope, '_>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Condvar::new(),
            done_lock: Mutex::new(()),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _marker: std::marker::PhantomData,
        };
        // The drain guard blocks until all tasks finish even when `f`
        // itself panics — spawned closures may borrow locals of `f`.
        struct Drain<'a> {
            pool: &'a ThreadPool,
            state: Arc<ScopeState>,
        }
        impl Drop for Drain<'_> {
            fn drop(&mut self) {
                // Help run injected work while waiting: keeps a
                // single-worker pool from deadlocking on nested scopes
                // and puts the calling thread to productive use.
                while self.state.pending.load(Ordering::Acquire) > 0 {
                    let job = self
                        .pool
                        .shared
                        .injector
                        .lock()
                        .expect("pool lock")
                        .pop_front();
                    match job {
                        Some(job) => {
                            note_job_executed();
                            job()
                        }
                        None => {
                            let guard = self.state.done_lock.lock().expect("pool lock");
                            if self.state.pending.load(Ordering::Acquire) > 0 {
                                let _unused = self
                                    .state
                                    .done
                                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                                    .expect("pool lock");
                            }
                        }
                    }
                }
            }
        }
        let result = {
            let _drain = Drain { pool: self, state: Arc::clone(&state) };
            f(&scope)
            // `_drain` drops here, blocking until every task completed.
        };
        if let Some(payload) = state.panic.lock().expect("pool lock").take() {
            std::panic::resume_unwind(payload);
        }
        result
    }

    /// Maps `f` over `items` in parallel, returning results in input
    /// order. Items self-schedule at index granularity, so uneven item
    /// costs balance across workers. `f` receives `(index, &item)`.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let tasks = self.threads().min(n);
        self.scope(|s| {
            for _ in 0..tasks {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("pool lock") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool lock")
                    .expect("scope drained, every slot filled")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let threads = self.workers.len();
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake everyone so they observe the flag.
        let _guard = self.shared.sleep_lock.lock().expect("pool lock");
        self.shared.work_signal.notify_all();
        drop(_guard);
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
        if let Some(series) = pool_series() {
            series.workers.add(-(threads as i64));
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Condvar,
    done_lock: Mutex<()>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant, as in `std::thread::scope`.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a task that may borrow data outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().expect("pool lock");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let remaining = state.pending.fetch_sub(1, Ordering::AcqRel);
            if remaining == 1 {
                let _guard = state.done_lock.lock().expect("pool lock");
                state.done.notify_all();
            }
        });
        // SAFETY: the scope's drain guard blocks until `pending` reaches
        // zero before the borrowed stack frame can unwind, so the closure
        // never outlives its borrows; lifetime erasure to 'static is sound.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task)
        };
        self.pool.inject(task);
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        if let Some(job) = shared.find_job(worker) {
            // A panicking job must not kill the worker; scoped tasks
            // already catch panics, but `find_job` may hand us any job.
            let _result = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep_lock.lock().expect("pool lock");
        // Re-check under the lock to avoid missing a notify between the
        // failed pop and the wait.
        let has_work = !shared.injector.lock().expect("pool lock").is_empty();
        if !has_work && !shared.shutdown.load(Ordering::Acquire) {
            let _unused = shared
                .work_signal
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .expect("pool lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let doubled = pool.parallel_map(&items, |_, &x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.parallel_map(&[7], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let sums: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for (i, chunk) in data.chunks(2).enumerate() {
                let sums = &sums;
                s.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    sums[i].store(sum as usize, Ordering::Relaxed);
                });
            }
        });
        let total: usize = sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn scope_runs_with_single_worker() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task failure"));
            });
        }));
        assert!(result.is_err());
        // The pool survives and keeps working.
        assert_eq!(pool.parallel_map(&[1, 2, 3], |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn heavy_nested_use_completes() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.parallel_map(&items, |_, &x| {
            // CPU-ish work with uneven cost.
            let mut acc = 0u64;
            for i in 0..(x * 1000) as u64 {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn spawned_jobs_drain_before_drop_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins only after the queue drains.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_series_count_executed_jobs() {
        // Active only in instrumented workspace builds; a standalone
        // `cargo test -p create-util` leaves create-obs stripped.
        if !create_obs::enabled() {
            return;
        }
        let executed = create_obs::counter(create_obs::names::POOL_JOBS_EXECUTED_TOTAL);
        let depth = create_obs::gauge(create_obs::names::POOL_QUEUE_DEPTH_GAUGE);
        let before = executed.get();
        {
            let pool = ThreadPool::new(2);
            let out = pool.parallel_map(&[1u64, 2, 3, 4], |_, &x| x * 2);
            assert_eq!(out, vec![2, 4, 6, 8]);
        }
        assert!(
            executed.get() > before,
            "parallel_map jobs land in the executed counter"
        );
        // Gauges are process-wide (other tests run pools concurrently),
        // so only sign-level assertions are safe here.
        assert!(depth.get() >= 0, "queue depth never goes negative");
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global();
        let b = ThreadPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }
}
