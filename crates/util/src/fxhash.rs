//! FxHash: the rustc/Firefox multiply-rotate hash, for internal maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~1ns/byte and
//! dominates profiles that hash millions of short strings — postings
//! dictionaries, graph label/property indexes. FxHash is a few
//! instructions per word and, unlike `RandomState`, deterministic
//! across processes, which keeps recovery behavior reproducible.
//!
//! Use it only for maps keyed by internal or already-bounded data; it
//! has no flooding protection.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Zero-sized `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Creates an [`FxHashMap`] with room for `capacity` entries.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One multiply and one rotate per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        assert_eq!(m.get("key-1000"), None);
    }

    #[test]
    fn deterministic_across_hashers() {
        use std::hash::{BuildHasher, Hash};
        let build = FxBuildHasher::default();
        let hash = |s: &str| {
            let mut h = build.build_hasher();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash("fever"), hash("fever"));
        assert_ne!(hash("fever"), hash("cough"));
        // Length folding distinguishes zero-padded tails.
        assert_ne!(hash("ab"), hash("ab\0"));
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn with_capacity_helper() {
        let m: FxHashMap<u32, u32> = map_with_capacity(64);
        assert!(m.capacity() >= 64);
    }
}
