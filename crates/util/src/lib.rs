//! Shared low-level utilities for the CREATe workspace.
//!
//! Everything in the reproduction must be deterministic so that experiments
//! are replayable from a seed. This crate provides the seedable PRNG used by
//! the corpus generator, the ML trainers, and the benchmarks, plus small
//! descriptive-statistics helpers used by the experiment harness.

pub mod arc_cell;
pub mod fxhash;
pub mod pool;
#[cfg(unix)]
pub mod poller;
pub mod rng;
pub mod stats;
pub mod varint;

pub use arc_cell::ArcCell;
pub use pool::ThreadPool;
pub use rng::Rng;
pub use stats::Summary;
