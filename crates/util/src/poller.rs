//! Readiness polling for the evented HTTP server.
//!
//! A thin FFI layer over `epoll(7)` on Linux with a portable `poll(2)`
//! fallback, plus a self-pipe [`Waker`] so worker threads can interrupt a
//! blocked [`Poller::wait`]. `std` already links the platform C library,
//! so the handful of symbols needed (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `poll`, `pipe2`, `read`, `write`, `close`) are declared
//! directly — no external crate.
//!
//! The API is deliberately small and level-triggered: callers register a
//! raw fd under a `u64` token with a read/write [`Interest`], and
//! [`Poller::wait`] reports [`Ready`] events until the interest is
//! changed or the fd deregistered. Level-triggered semantics keep the
//! connection state machines in `create-server` simple — an event is
//! re-reported until the socket is drained, so a short read never strands
//! buffered bytes.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Neither direction — the fd stays registered but only error/hangup
    /// conditions are reported (the backpressure state).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (includes peer hangup, so a read observes EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition on the fd.
    pub hangup: bool,
}

mod sys {
    //! The raw C interfaces. Linux-first; the `poll(2)`/`pipe` calls are
    //! POSIX and back the fallback path.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn listen(fd: i32, backlog: i32) -> i32;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// Matches the kernel UAPI layout: packed on x86_64, naturally
        /// aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
                -> i32;
        }

        pub fn mask_for(interest: super::super::Interest) -> u32 {
            let mut mask = EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            mask
        }
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
    }
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(target_os = "linux")]
    pub const O_CLOEXEC: i32 = 0o2000000;

    #[cfg(all(unix, not(target_os = "linux")))]
    extern "C" {
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    }
}

fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// Milliseconds for the kernel wait call: `None` blocks forever, sub-ms
/// remainders round up so a near deadline never degenerates into a spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = (d.as_nanos() + 999_999) / 1_000_000;
            ms.min(i32::MAX as u128) as i32
        }
    }
}

struct Registration {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        buf: Vec<sys::epoll::EpollEvent>,
    },
    Poll {
        regs: Vec<Registration>,
        buf: Vec<sys::PollFd>,
    },
}

/// A readiness poller over raw fds.
pub struct Poller {
    backend: Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => write!(f, "Poller(epoll fd {epfd})"),
            Backend::Poll { regs, .. } => write!(f, "Poller(poll, {} fds)", regs.len()),
        }
    }
}

impl Poller {
    /// The platform's best backend: epoll on Linux, `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_error());
            }
            Ok(Poller {
                backend: Backend::Epoll {
                    epfd,
                    buf: vec![sys::epoll::EpollEvent { events: 0, data: 0 }; 1024],
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_poll_backend()
        }
    }

    /// The portable `poll(2)` backend, selectable everywhere (exercised
    /// by tests even on Linux).
    pub fn with_poll_backend() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll {
                regs: Vec::new(),
                buf: Vec::new(),
            },
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::epoll::EpollEvent {
                    events: sys::epoll::mask_for(interest),
                    data: token,
                };
                if unsafe { sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_ADD, fd, &mut ev) }
                    < 0
                {
                    return Err(last_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                regs.push(Registration { fd, token, interest });
                Ok(())
            }
        }
    }

    /// Updates the interest (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::epoll::EpollEvent {
                    events: sys::epoll::mask_for(interest),
                    data: token,
                };
                if unsafe { sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_MOD, fd, &mut ev) }
                    < 0
                {
                    return Err(last_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                match regs.iter_mut().find(|r| r.fd == fd) {
                    Some(reg) => {
                        reg.token = token;
                        reg.interest = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Stops watching `fd`. Call before closing the fd so the fallback
    /// backend's registration table stays consistent.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::epoll::EpollEvent { events: 0, data: 0 };
                if unsafe { sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_DEL, fd, &mut ev) }
                    < 0
                {
                    return Err(last_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                regs.retain(|r| r.fd != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`events` left empty), or a signal interrupts the wait
    /// (also empty — callers just loop).
    pub fn wait(&mut self, events: &mut Vec<Ready>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                let n = unsafe {
                    sys::epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, ms)
                };
                if n < 0 {
                    let err = last_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for ev in &buf[..n as usize] {
                    let bits = ev.events;
                    let hangup = bits
                        & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP | sys::epoll::EPOLLRDHUP)
                        != 0;
                    events.push(Ready {
                        token: ev.data,
                        readable: bits & sys::epoll::EPOLLIN != 0 || hangup,
                        writable: bits & sys::epoll::EPOLLOUT != 0,
                        hangup,
                    });
                }
                Ok(())
            }
            Backend::Poll { regs, buf } => {
                buf.clear();
                buf.extend(regs.iter().map(|r| {
                    let mut mask = 0i16;
                    if r.interest.readable {
                        mask |= sys::POLLIN;
                    }
                    if r.interest.writable {
                        mask |= sys::POLLOUT;
                    }
                    sys::PollFd { fd: r.fd, events: mask, revents: 0 }
                }));
                let n = unsafe {
                    sys::poll(buf.as_mut_ptr(), buf.len() as core::ffi::c_ulong, ms)
                };
                if n < 0 {
                    let err = last_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (pfd, reg) in buf.iter().zip(regs.iter()) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    let hangup = bits & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Ready {
                        token: reg.token,
                        readable: bits & sys::POLLIN != 0 || hangup,
                        writable: bits & sys::POLLOUT != 0,
                        hangup,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            unsafe { sys::close(*epfd) };
        }
    }
}

/// Write half of the self-pipe: threads call [`Waker::wake`] to interrupt
/// a poller blocked in [`Poller::wait`]. Share via `Arc`.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

// SAFETY: `write(2)` on a pipe fd is thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Queues a wakeup. A full pipe means a wake is already pending, so
    /// `EAGAIN` is success; other errors are ignored (the loop also
    /// wakes on its own timeouts).
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe { sys::write(self.fd, byte.as_ptr(), 1) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Read half of the self-pipe; register [`WakeRx::fd`] with the poller
/// and [`WakeRx::drain`] on readiness.
#[derive(Debug)]
pub struct WakeRx {
    fd: RawFd,
}

unsafe impl Send for WakeRx {}
unsafe impl Sync for WakeRx {}

impl WakeRx {
    /// The fd to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Consumes every pending wake byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakeRx {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Re-arms `listen(2)` on an already-listening socket with a larger
/// backlog. `std::net::TcpListener` hardcodes 128, which a connection
/// storm overflows — overflowed SYNs are dropped and retransmit seconds
/// later. POSIX permits calling `listen` again to resize the queue.
pub fn set_listen_backlog(fd: RawFd, backlog: usize) -> io::Result<()> {
    let backlog = backlog.min(i32::MAX as usize) as i32;
    if unsafe { sys::listen(fd, backlog) } < 0 {
        return Err(last_error());
    }
    Ok(())
}

/// Builds a nonblocking self-pipe pair.
pub fn wake_pipe() -> io::Result<(WakeRx, Waker)> {
    let mut fds = [0i32; 2];
    #[cfg(target_os = "linux")]
    {
        if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) } < 0 {
            return Err(last_error());
        }
    }
    #[cfg(all(unix, not(target_os = "linux")))]
    {
        const F_SETFL: i32 = 4;
        const O_NONBLOCK_BSD: i32 = 0x4;
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_error());
        }
        for fd in fds {
            unsafe { sys::fcntl(fd, F_SETFL, O_NONBLOCK_BSD) };
        }
    }
    Ok((WakeRx { fd: fds[0] }, Waker { fd: fds[1] }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        vec![Poller::new().unwrap(), Poller::with_poll_backend().unwrap()]
    }

    #[test]
    fn reports_tcp_readability() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 7, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            // Nothing to read yet.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} reported a phantom event");
            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn write_interest_and_modify() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            // Registered with no interest: stays silent.
            poller
                .register(server.as_raw_fd(), 1, Interest::NONE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?}");
            // Flip to write interest: an idle socket is writable at once.
            poller
                .modify(server.as_raw_fd(), 2, Interest::WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert_eq!(events[0].token, 2, "modify retags the token");
            assert!(events[0].writable);
            poller.deregister(server.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} after deregister");
        }
    }

    #[test]
    fn hangup_reported_as_readable() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 9, Interest::READ)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert!(events[0].readable, "EOF must surface as readable");
        }
    }

    #[test]
    fn waker_interrupts_wait() {
        for mut poller in backends() {
            let (rx, waker) = wake_pipe().unwrap();
            poller.register(rx.fd(), 0, Interest::READ).unwrap();
            let waker = std::sync::Arc::new(waker);
            let remote = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                remote.wake();
            });
            let mut events = Vec::new();
            let started = std::time::Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "{poller:?} wake did not interrupt the wait"
            );
            assert_eq!(events.len(), 1);
            rx.drain();
            // Drained: the next wait times out quietly.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?}");
            t.join().unwrap();
        }
    }

    #[test]
    fn repeated_wakes_coalesce() {
        let (rx, waker) = wake_pipe().unwrap();
        for _ in 0..100_000 {
            waker.wake(); // never blocks, even with the pipe full
        }
        rx.drain();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.fd(), 0, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drain cleared every pending byte");
    }

    #[test]
    fn timeout_rounds_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1500))), 2);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1_000_000_000))), i32::MAX);
    }
}
