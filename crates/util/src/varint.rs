//! LEB128 variable-length integer coding, shared by the postings codec
//! (`create-index::codec`) and the durable-storage file formats
//! (`create-storage`). Values are encoded little-endian, 7 bits per
//! byte, with the high bit as the continuation flag — the Lucene/
//! Protobuf wire format, so small deltas cost one byte.

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Appends a `u32` (same wire format; capped at 5 bytes).
#[inline]
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    write_u64(out, v as u64);
}

/// Decodes a LEB128 integer from `buf[*pos..]`, advancing `*pos`.
/// Returns `None` on truncated input or an encoding longer than a
/// `u64` can hold (a corruption signal, never produced by the writer).
///
/// Inlined (along with the other helpers) because segment decode calls
/// this once per posting and per position — a cross-crate call here is
/// measurable on the cold-open path.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // Fast path: single-byte values dominate postings streams (doc
    // gaps and position deltas are mostly < 128).
    if let Some(&byte) = buf.get(*pos) {
        if byte < 0x80 {
            *pos += 1;
            return Some(byte as u64);
        }
    }
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        // The final (10th) byte may only carry the top bit of a u64.
        if shift == 63 && byte > 1 {
            return None;
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Decodes a `u32`, rejecting values that overflow it.
#[inline]
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let v = read_u64(buf, pos)?;
    u32::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundary_values() {
        let values = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v}");
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn small_values_cost_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0x7f);
        assert_eq!(buf.len(), 1);
        write_u64(&mut buf, 0x80);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn u32_overflow_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
        pos = 0;
        buf.clear();
        write_u32(&mut buf, u32::MAX);
        assert_eq!(read_u32(&buf, &mut pos), Some(u32::MAX));
    }
}
