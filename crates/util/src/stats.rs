//! Descriptive statistics for the experiment harness.
//!
//! The benchmark binaries report latency and score distributions; this module
//! keeps those computations in one tested place instead of re-deriving them
//! in every `exp_*` binary.

/// Summary statistics over a sample of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean; 0.0 for an empty sample.
    pub mean: f64,
    /// Population standard deviation; 0.0 for samples of size < 2.
    pub std_dev: f64,
    /// Smallest observation; 0.0 for an empty sample.
    pub min: f64,
    /// Largest observation; 0.0 for an empty sample.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of the sample. The input does not need to
    /// be sorted. NaNs are rejected with a panic because they invariably mean
    /// a bug upstream in a metric computation.
    pub fn of(values: &[f64]) -> Summary {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "Summary::of received NaN observations"
        );
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN ruled out above"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

/// Percentile by linear interpolation between closest ranks; input must be
/// sorted ascending and non-empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A fixed-width histogram used for the Fig-1 style category breakdowns and
/// latency plots printed by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Observations below `lo` or at/above `hi`.
    pub outliers: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal bins.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo < hi && buckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            outliers: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        if v < self.lo || v >= self.hi {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((v - self.lo) / width) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Bucket counts, low to high.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded observations, excluding outliers.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Renders a compact ASCII bar chart (used by `exp_*` binaries).
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let bin = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            let lo = self.lo + bin * i as f64;
            out.push_str(&format!(
                "{:>10.3} | {:<width$} {}\n",
                lo,
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_unsorted_input() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!((s.p50 - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.total(), 10);
        assert_eq!(h.outliers, 2);
        assert!(h.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn histogram_renders_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let rendered = h.render(10);
        assert!(rendered.contains('#'));
        assert_eq!(rendered.lines().count(), 2);
    }
}
