#!/bin/bash
# Regenerates every experiment table (EXPERIMENTS.md source data).
set -u
cd /root/repo
for e in exp_fig1_categories exp_fig5_transitivity exp_fig7_layout exp_grobid_extraction \
         exp_ngram_analyzer exp_temporal_f1 exp_fig6_merge_policy exp_ir_vs_solr \
         exp_ner_f1 exp_cflair_ablation exp_scalability; do
  echo "##### $e"
  cargo run --release -p create-bench --bin "$e" 2>/dev/null
done
