//! Property-based tests over the core data structures and invariants.

use create::annotate::BratDocument;
use create::docstore::{parse_json, Value};
use create::ontology::RelationType;
use create::temporal::TemporalGraph;
use create::text::stem::porter_stem;
use create::text::{split_sentences, Span, StandardTokenizer, Tokenizer};
use proptest::prelude::*;

// ---- JSON ----

fn arb_json(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1e9f64..1e9f64).prop_map(Value::Number),
        "[a-zA-Z0-9 _\\-\"\\\\\n\t\u{e9}\u{4e2d}]{0,24}".prop_map(Value::String),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #[test]
    fn json_round_trips(value in arb_json(3)) {
        let compact = value.to_json();
        let reparsed = parse_json(&compact).expect("own output must parse");
        prop_assert_eq!(&reparsed, &value);
        let pretty = value.to_json_pretty();
        prop_assert_eq!(parse_json(&pretty).expect("pretty parses"), value);
    }

    #[test]
    fn json_parser_never_panics(input in ".{0,200}") {
        let _ = parse_json(&input);
    }
}

// ---- Text ----

proptest! {
    #[test]
    fn tokenizer_spans_always_slice_back(text in ".{0,300}") {
        for t in StandardTokenizer.tokenize(&text) {
            prop_assert_eq!(t.span.slice(&text), t.text.as_str());
        }
    }

    #[test]
    fn sentence_spans_are_ordered_and_in_bounds(text in ".{0,400}") {
        let spans = split_sentences(&text);
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for s in &spans {
            prop_assert!(s.end <= text.len());
            prop_assert!(text.is_char_boundary(s.start) && text.is_char_boundary(s.end));
        }
    }

    #[test]
    fn porter_stem_never_grows_much(word in "[a-z]{1,24}") {
        let stem = porter_stem(&word);
        // Porter may add at most one char (e.g. conflat+e) but never more.
        prop_assert!(stem.len() <= word.len() + 1, "{} -> {}", word, stem);
        prop_assert!(!stem.is_empty());
    }

    #[test]
    fn span_algebra_consistent(a in 0usize..100, b in 0usize..100, c in 0usize..100, d in 0usize..100) {
        let s1 = Span::new(a.min(b), a.max(b));
        let s2 = Span::new(c.min(d), c.max(d));
        // overlap ⇒ touches; containment ⇒ overlap-or-empty.
        if s1.overlaps(&s2) {
            prop_assert!(s1.touches(&s2));
            prop_assert!(s1.intersect(&s2).is_some());
        }
        if let Some(i) = s1.intersect(&s2) {
            prop_assert!(s1.contains(&i) && s2.contains(&i));
        }
        let cover = s1.cover(&s2);
        prop_assert!(cover.contains(&s1) && cover.contains(&s2));
    }
}

// ---- Corpus / gold-annotation invariants ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn generated_reports_always_validate(seed in 0u64..10_000) {
        let report = create::corpus::Generator::new(create::corpus::CorpusConfig {
            num_reports: 1,
            seed,
            ..Default::default()
        })
        .generate()
        .remove(0);
        prop_assert_eq!(report.validate(), Ok(()));
        // And export to BRAT validates against the text.
        let brat = create::annotate::case_report_to_brat(&report);
        prop_assert!(brat.validate(&report.text).is_ok());
    }

    #[test]
    fn generated_temporal_gold_is_transitive(seed in 0u64..5_000) {
        let ds = create::corpus::temporal_data::i2b2_like(seed, 3);
        for doc in &ds.docs {
            use std::collections::HashMap;
            let mut label: HashMap<(usize, usize), RelationType> = HashMap::new();
            for &(i, j, l) in &doc.pairs {
                label.insert((i, j), l);
            }
            for (&(a, b), &ab) in &label {
                for (&(b2, c), &bc) in &label {
                    if b2 != b { continue; }
                    if let Some(&ac) = label.get(&(a, c)) {
                        if ab == RelationType::Before && bc == RelationType::Before {
                            prop_assert_eq!(ac, RelationType::Before);
                        }
                        if ab == RelationType::After && bc == RelationType::After {
                            prop_assert_eq!(ac, RelationType::After);
                        }
                    }
                }
            }
        }
    }
}

// ---- Temporal graph ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn timeline_graphs_are_always_consistent(
        steps in prop::collection::vec(0u32..5, 2..10),
        edge_selector in prop::collection::vec(any::<bool>(), 45),
    ) {
        // Build edges consistent with a latent step assignment; the graph
        // must be consistent and inference must agree with the steps.
        let n = steps.len();
        let mut g = TemporalGraph::new((0..n).map(|i| format!("e{i}")).collect());
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let take = edge_selector.get(k).copied().unwrap_or(false);
                k += 1;
                if !take {
                    continue;
                }
                let rel = match steps[i].cmp(&steps[j]) {
                    std::cmp::Ordering::Less => RelationType::Before,
                    std::cmp::Ordering::Greater => RelationType::After,
                    std::cmp::Ordering::Equal => RelationType::Overlap,
                };
                g.add_edge(i, j, rel);
            }
        }
        prop_assert!(g.is_consistent());
        // Whatever is inferred must agree with the latent steps.
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                match g.infer(a, b) {
                    Some(RelationType::Before) => prop_assert!(steps[a] < steps[b]),
                    Some(RelationType::After) => prop_assert!(steps[a] > steps[b]),
                    Some(RelationType::Overlap) => prop_assert_eq!(steps[a], steps[b]),
                    _ => {}
                }
            }
        }
    }
}

// ---- BRAT ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn brat_serialization_round_trips(
        n_entities in 1usize..8,
        seed in 0u64..1_000,
    ) {
        // Build a synthetic but well-formed BRAT document.
        let mut doc = BratDocument::default();
        let mut rng = create::util::Rng::seed_from_u64(seed);
        for i in 0..n_entities {
            let start = rng.below(50);
            let len = 1 + rng.below(10);
            doc.text_bounds.push(create::annotate::TextBoundAnn {
                id: i as u32 + 1,
                type_name: "Sign_symptom".to_string(),
                start,
                end: start + len,
                text: "x".repeat(len),
            });
        }
        if n_entities >= 2 {
            doc.relations.push(create::annotate::RelationAnn {
                id: 1,
                type_name: "BEFORE".to_string(),
                arg1: 1,
                arg2: 2,
            });
        }
        let reparsed = BratDocument::parse(&doc.serialize()).expect("own output parses");
        prop_assert_eq!(reparsed, doc);
    }

    #[test]
    fn brat_parser_never_panics(input in ".{0,200}") {
        let _ = BratDocument::parse(&input);
    }
}

// ---- PDF ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn pdf_text_round_trips_ascii(
        title in "[a-zA-Z0-9 ,.:()-]{1,60}",
        lines in prop::collection::vec("[a-zA-Z0-9 ,.;()-]{0,70}", 0..20),
    ) {
        let src = create::grobid::PdfSource {
            title: title.clone(),
            authors: "Smith J".to_string(),
            affiliation: "University Hospital".to_string(),
            body_lines: lines.clone(),
        };
        let bytes = create::grobid::write_pdf(&src);
        let pages = create::grobid::extract_text(&bytes).expect("own PDFs parse");
        let all: Vec<String> = pages.concat();
        prop_assert_eq!(all[0].as_str(), title.as_str());
        // Every non-empty body line must be recovered verbatim.
        for line in lines.iter().filter(|l| !l.is_empty()) {
            prop_assert!(all.iter().any(|l| l == line), "missing line {:?}", line);
        }
    }

    #[test]
    fn pdf_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = create::grobid::extract_text(&bytes);
    }
}

// ---- Cypher ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cypher_parser_never_panics(input in ".{0,120}") {
        let _ = create::graphdb::parse_query(&input);
    }
}
