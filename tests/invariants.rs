//! Invariant tests over the core data structures, driven by seeded
//! deterministic fuzzing (the offline replacement for the former
//! proptest suite — same properties, explicit `create::util::Rng`
//! input generation so the workspace builds with no external deps).

use create::annotate::BratDocument;
use create::docstore::{parse_json, Value};
use create::ontology::RelationType;
use create::temporal::TemporalGraph;
use create::text::stem::porter_stem;
use create::text::{split_sentences, Span, StandardTokenizer, Tokenizer};
use create::util::Rng;

/// A printable-ish random string with some multi-byte and escape-relevant
/// characters mixed in, `0..max_len` chars.
fn arb_string(rng: &mut Rng, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', ' ', '_', '-', '"', '\\', '\n', '\t', '.', ',',
        '(', ')', '{', '}', '[', ']', ':', ';', 'é', '中', '°', '\u{7f}',
    ];
    let len = rng.below(max_len + 1);
    (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len())]).collect()
}

fn arb_json(rng: &mut Rng, depth: u32) -> Value {
    let choices = if depth == 0 { 4 } else { 6 };
    match rng.below(choices) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Number(rng.f64_range(-1e9, 1e9)),
        3 => Value::String(arb_string(rng, 24)),
        4 => Value::Array((0..rng.below(6)).map(|_| arb_json(rng, depth - 1)).collect()),
        _ => {
            let mut obj = std::collections::BTreeMap::new();
            for _ in 0..rng.below(6) {
                let len = 1 + rng.below(8);
                let key: String = (0..len).map(|_| (b'a' + rng.below(26) as u8) as char).collect();
                obj.insert(key, arb_json(rng, depth - 1));
            }
            Value::Object(obj)
        }
    }
}

// ---- JSON ----

#[test]
fn json_round_trips() {
    let mut rng = Rng::seed_from_u64(0x1001);
    for _ in 0..256 {
        let value = arb_json(&mut rng, 3);
        let compact = value.to_json();
        let reparsed = parse_json(&compact).expect("own output must parse");
        assert_eq!(reparsed, value, "compact round trip of {compact}");
        let pretty = value.to_json_pretty();
        assert_eq!(parse_json(&pretty).expect("pretty parses"), value);
    }
}

#[test]
fn json_parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x1002);
    for _ in 0..512 {
        let _ = parse_json(&arb_string(&mut rng, 200));
    }
}

// ---- Text ----

#[test]
fn tokenizer_spans_always_slice_back() {
    let mut rng = Rng::seed_from_u64(0x2001);
    for _ in 0..256 {
        let text = arb_string(&mut rng, 300);
        for t in StandardTokenizer.tokenize(&text) {
            assert_eq!(t.span.slice(&text), t.text.as_str());
        }
    }
}

#[test]
fn sentence_spans_are_ordered_and_in_bounds() {
    let mut rng = Rng::seed_from_u64(0x2002);
    for _ in 0..256 {
        let text = arb_string(&mut rng, 400);
        let spans = split_sentences(&text);
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        for s in &spans {
            assert!(s.end <= text.len());
            assert!(text.is_char_boundary(s.start) && text.is_char_boundary(s.end));
        }
    }
}

#[test]
fn porter_stem_never_grows_much() {
    let mut rng = Rng::seed_from_u64(0x2003);
    for _ in 0..512 {
        let len = 1 + rng.below(24);
        let word: String = (0..len).map(|_| (b'a' + rng.below(26) as u8) as char).collect();
        let stem = porter_stem(&word);
        // Porter may add at most one char (e.g. conflat+e) but never more.
        assert!(stem.len() <= word.len() + 1, "{word} -> {stem}");
        assert!(!stem.is_empty());
    }
}

#[test]
fn span_algebra_consistent() {
    let mut rng = Rng::seed_from_u64(0x2004);
    for _ in 0..512 {
        let (a, b, c, d) = (rng.below(100), rng.below(100), rng.below(100), rng.below(100));
        let s1 = Span::new(a.min(b), a.max(b));
        let s2 = Span::new(c.min(d), c.max(d));
        // overlap ⇒ touches; containment ⇒ overlap-or-empty.
        if s1.overlaps(&s2) {
            assert!(s1.touches(&s2));
            assert!(s1.intersect(&s2).is_some());
        }
        if let Some(i) = s1.intersect(&s2) {
            assert!(s1.contains(&i) && s2.contains(&i));
        }
        let cover = s1.cover(&s2);
        assert!(cover.contains(&s1) && cover.contains(&s2));
    }
}

// ---- Corpus / gold-annotation invariants ----

#[test]
fn generated_reports_always_validate() {
    let mut rng = Rng::seed_from_u64(0x3001);
    for _ in 0..16 {
        let seed = rng.below(10_000) as u64;
        let report = create::corpus::Generator::new(create::corpus::CorpusConfig {
            num_reports: 1,
            seed,
            ..Default::default()
        })
        .generate()
        .remove(0);
        assert_eq!(report.validate(), Ok(()), "seed {seed}");
        // And export to BRAT validates against the text.
        let brat = create::annotate::case_report_to_brat(&report);
        assert!(brat.validate(&report.text).is_ok(), "seed {seed}");
    }
}

#[test]
fn generated_temporal_gold_is_transitive() {
    let mut rng = Rng::seed_from_u64(0x3002);
    for _ in 0..16 {
        let seed = rng.below(5_000) as u64;
        let ds = create::corpus::temporal_data::i2b2_like(seed, 3);
        for doc in &ds.docs {
            use std::collections::HashMap;
            let mut label: HashMap<(usize, usize), RelationType> = HashMap::new();
            for &(i, j, l) in &doc.pairs {
                label.insert((i, j), l);
            }
            for (&(a, b), &ab) in &label {
                for (&(b2, c), &bc) in &label {
                    if b2 != b {
                        continue;
                    }
                    if let Some(&ac) = label.get(&(a, c)) {
                        if ab == RelationType::Before && bc == RelationType::Before {
                            assert_eq!(ac, RelationType::Before);
                        }
                        if ab == RelationType::After && bc == RelationType::After {
                            assert_eq!(ac, RelationType::After);
                        }
                    }
                }
            }
        }
    }
}

// ---- Temporal graph ----

#[test]
fn timeline_graphs_are_always_consistent() {
    let mut rng = Rng::seed_from_u64(0x4001);
    for _ in 0..64 {
        // Build edges consistent with a latent step assignment; the graph
        // must be consistent and inference must agree with the steps.
        let n = 2 + rng.below(8);
        let steps: Vec<u32> = (0..n).map(|_| rng.below(5) as u32).collect();
        let mut g = TemporalGraph::new((0..n).map(|i| format!("e{i}")).collect());
        for i in 0..n {
            for j in (i + 1)..n {
                if !rng.chance(0.5) {
                    continue;
                }
                let rel = match steps[i].cmp(&steps[j]) {
                    std::cmp::Ordering::Less => RelationType::Before,
                    std::cmp::Ordering::Greater => RelationType::After,
                    std::cmp::Ordering::Equal => RelationType::Overlap,
                };
                g.add_edge(i, j, rel);
            }
        }
        assert!(g.is_consistent());
        // Whatever is inferred must agree with the latent steps.
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                match g.infer(a, b) {
                    Some(RelationType::Before) => assert!(steps[a] < steps[b]),
                    Some(RelationType::After) => assert!(steps[a] > steps[b]),
                    Some(RelationType::Overlap) => assert_eq!(steps[a], steps[b]),
                    _ => {}
                }
            }
        }
    }
}

// ---- BRAT ----

#[test]
fn brat_serialization_round_trips() {
    let mut rng = Rng::seed_from_u64(0x5001);
    for _ in 0..32 {
        // Build a synthetic but well-formed BRAT document.
        let n_entities = 1 + rng.below(7);
        let mut doc = BratDocument::default();
        for i in 0..n_entities {
            let start = rng.below(50);
            let len = 1 + rng.below(10);
            doc.text_bounds.push(create::annotate::TextBoundAnn {
                id: i as u32 + 1,
                type_name: "Sign_symptom".to_string(),
                start,
                end: start + len,
                text: "x".repeat(len),
            });
        }
        if n_entities >= 2 {
            doc.relations.push(create::annotate::RelationAnn {
                id: 1,
                type_name: "BEFORE".to_string(),
                arg1: 1,
                arg2: 2,
            });
        }
        let reparsed = BratDocument::parse(&doc.serialize()).expect("own output parses");
        assert_eq!(reparsed, doc);
    }
}

#[test]
fn brat_parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x5002);
    for _ in 0..256 {
        let _ = BratDocument::parse(&arb_string(&mut rng, 200));
    }
}

// ---- PDF ----

#[test]
fn pdf_text_round_trips_ascii() {
    const BODY_CHARS: &[char] = &[
        'a', 'e', 'i', 'o', 'u', 'x', 'A', 'Z', '0', '9', ' ', ',', '.', ';', '(', ')', '-',
    ];
    let mut rng = Rng::seed_from_u64(0x6001);
    for _ in 0..32 {
        let title: String = (0..1 + rng.below(60))
            .map(|_| BODY_CHARS[rng.below(BODY_CHARS.len())])
            .collect();
        let lines: Vec<String> = (0..rng.below(20))
            .map(|_| {
                (0..rng.below(70))
                    .map(|_| BODY_CHARS[rng.below(BODY_CHARS.len())])
                    .collect()
            })
            .collect();
        let src = create::grobid::PdfSource {
            title: title.clone(),
            authors: "Smith J".to_string(),
            affiliation: "University Hospital".to_string(),
            body_lines: lines.clone(),
        };
        let bytes = create::grobid::write_pdf(&src);
        let pages = create::grobid::extract_text(&bytes).expect("own PDFs parse");
        let all: Vec<String> = pages.concat();
        assert_eq!(all[0].as_str(), title.as_str());
        // Every non-empty body line must be recovered verbatim.
        for line in lines.iter().filter(|l| !l.is_empty()) {
            assert!(all.iter().any(|l| l == line), "missing line {line:?}");
        }
    }
}

#[test]
fn pdf_parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x6002);
    for _ in 0..64 {
        let bytes: Vec<u8> = (0..rng.below(400)).map(|_| rng.below(256) as u8).collect();
        let _ = create::grobid::extract_text(&bytes);
    }
}

// ---- Cypher ----

#[test]
fn cypher_parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x7001);
    for _ in 0..256 {
        let _ = create::graphdb::parse_query(&arb_string(&mut rng, 120));
    }
}
