//! Pruned-vs-exhaustive query equivalence suite.
//!
//! The DAAT executor behind `Index::search` (galloping intersection,
//! single-pass phrase scoring, MaxScore top-k pruning, bucketed fuzzy
//! expansion) promises rankings *bit-identical* to the exhaustive
//! baseline `Index::search_exhaustive`. This suite drives both executors
//! with 100 seeded queries mixed across every node type and asserts
//! score-bit and order equality, pins the phrase path against captured
//! expected output on a 200-document corpus (the quadratic-blowup
//! regression), checks the bucketed fuzzy expansion against the
//! full-dictionary sweep, and proves the facade's query cache never
//! serves stale results across an ingest.

use create::corpus::{CaseReport, CorpusConfig, Generator};
use create::core::{Create, CreateConfig};
use create::index::score::Scorer;
use create::index::{Index, QueryNode};
use create::text::Analyzer;
use create::util::Rng;

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

/// The production index layout over a generated corpus.
fn clinical_index(reports: &[CaseReport]) -> Index {
    let mut idx = Index::clinical();
    for r in reports {
        idx.add_document(
            &r.id,
            &[
                ("title", r.title.as_str()),
                ("body", r.text.as_str()),
                ("body_ngram", r.text.as_str()),
            ],
        )
        .unwrap();
    }
    idx
}

/// Asserts the DAAT and exhaustive executors agree hit-for-hit,
/// score-bit-for-score-bit, and returns the hits.
fn assert_equivalent(
    idx: &Index,
    q: &QueryNode,
    k: usize,
    scorer: Scorer,
    label: &str,
) -> Vec<create::index::ScoredDoc> {
    let daat = idx.search(q, k, scorer);
    let exhaustive = idx.search_exhaustive(q, k, scorer);
    assert_eq!(
        daat.len(),
        exhaustive.len(),
        "{label}: hit count {} vs {}",
        daat.len(),
        exhaustive.len()
    );
    for (i, (a, b)) in daat.iter().zip(&exhaustive).enumerate() {
        assert_eq!(a.doc, b.doc, "{label}: doc order diverges at rank {i}");
        assert_eq!(a.external_id, b.external_id, "{label}: id at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{label}: score bits at rank {i} ({} vs {})",
            a.score,
            b.score
        );
    }
    daat
}

/// A random analyzed term drawn from a random report's body.
fn random_term(rng: &mut Rng, analyzed: &[Vec<String>]) -> String {
    loop {
        let doc = &analyzed[rng.below(analyzed.len())];
        if doc.is_empty() {
            continue;
        }
        return doc[rng.below(doc.len())].clone();
    }
}

/// A consecutive window of analyzed terms (a phrase that really occurs).
fn random_phrase(rng: &mut Rng, analyzed: &[Vec<String>], len: usize) -> Vec<String> {
    loop {
        let doc = &analyzed[rng.below(analyzed.len())];
        if doc.len() < len {
            continue;
        }
        let start = rng.below(doc.len() - len + 1);
        return doc[start..start + len].to_vec();
    }
}

/// Mutates one character of a term to make a seeded typo.
fn typo(rng: &mut Rng, term: &str) -> String {
    let mut chars: Vec<char> = term.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.below(chars.len());
    match rng.below(3) {
        0 => chars[pos] = (b'a' + rng.below(26) as u8) as char, // substitute
        1 => {
            chars.remove(pos); // delete
        }
        _ => chars.insert(pos, (b'a' + rng.below(26) as u8) as char), // insert
    }
    chars.into_iter().collect()
}

#[test]
fn hundred_seeded_queries_are_bit_identical() {
    let reports = corpus(250, 4242);
    let idx = clinical_index(&reports);
    let analyzer = Analyzer::clinical_standard();
    let analyzed: Vec<Vec<String>> = reports.iter().map(|r| analyzer.terms(&r.text)).collect();
    let mut rng = Rng::seed_from_u64(990_017);
    let ks = [1, 5, 10, 50];
    for i in 0..100 {
        let k = ks[rng.below(ks.len())];
        let scorer = if rng.below(5) == 0 {
            Scorer::TfIdf
        } else {
            Scorer::default()
        };
        let q = match i % 4 {
            0 => QueryNode::Term {
                field: "body".to_string(),
                term: random_term(&mut rng, &analyzed),
            },
            1 => {
                let len = 2 + rng.below(2);
                QueryNode::Phrase {
                    field: "body".to_string(),
                    terms: random_phrase(&mut rng, &analyzed, len),
                }
            }
            2 => QueryNode::Bool {
                must: (0..1 + rng.below(2))
                    .map(|_| QueryNode::Term {
                        field: "body".to_string(),
                        term: random_term(&mut rng, &analyzed),
                    })
                    .collect(),
                should: (0..rng.below(3))
                    .map(|_| QueryNode::Term {
                        field: "body".to_string(),
                        term: random_term(&mut rng, &analyzed),
                    })
                    .collect(),
                must_not: if rng.below(3) == 0 {
                    vec![QueryNode::Term {
                        field: "body".to_string(),
                        term: random_term(&mut rng, &analyzed),
                    }]
                } else {
                    Vec::new()
                },
            },
            _ => {
                let base = random_term(&mut rng, &analyzed);
                QueryNode::Fuzzy {
                    field: "body".to_string(),
                    term: typo(&mut rng, &base),
                    max_edits: 1 + rng.below(2),
                }
            }
        };
        assert_equivalent(&idx, &q, k, scorer, &format!("query {i} ({q:?})"));
    }
}

#[test]
fn flat_disjunctions_prune_identically() {
    // The MaxScore path proper: multi-field query_string disjunctions,
    // exactly what `keyword_search` sends.
    let reports = corpus(250, 4242);
    let idx = clinical_index(&reports);
    let mut rng = Rng::seed_from_u64(661_331);
    let analyzer = Analyzer::clinical_standard();
    let analyzed: Vec<Vec<String>> = reports.iter().map(|r| analyzer.terms(&r.text)).collect();
    for i in 0..30 {
        let n_terms = 1 + rng.below(5);
        let text = (0..n_terms)
            .map(|_| random_term(&mut rng, &analyzed))
            .collect::<Vec<_>>()
            .join(" ");
        let q = QueryNode::Bool {
            must: Vec::new(),
            should: vec![
                QueryNode::query_string(&idx, "title", &text),
                QueryNode::query_string(&idx, "body", &text),
                QueryNode::query_string(&idx, "body_ngram", &text),
            ],
            must_not: Vec::new(),
        };
        for k in [1, 3, 10] {
            assert_equivalent(&idx, &q, k, Scorer::default(), &format!("qs {i} k={k}"));
        }
    }
}

/// The quadratic-blowup regression (satellite 1): on a 200-document
/// corpus, the phrase executor must return exactly the output the
/// pre-DAAT implementation produced — captured below as literal expected
/// data (external ids + f64 score bits) — while no longer rescanning
/// every posting list per candidate document.
#[test]
fn phrase_search_matches_captured_expected_output() {
    let reports = corpus(200, 7171);
    let idx = clinical_index(&reports);
    let analyzer = Analyzer::clinical_standard();
    let phrase_terms = analyzer.terms("chest pain");
    assert_eq!(phrase_terms.len(), 2, "analyzer keeps both phrase words");
    let q = QueryNode::Phrase {
        field: "body".to_string(),
        terms: phrase_terms,
    };
    let hits = assert_equivalent(&idx, &q, 10, Scorer::default(), "phrase regression");
    let got: Vec<(&str, u64)> = hits
        .iter()
        .map(|h| (h.external_id.as_str(), h.score.to_bits()))
        .collect();
    // Captured from the exhaustive implementation on this exact corpus;
    // any ranking or scoring drift fails here.
    let expected: &[(&str, u64)] = EXPECTED_PHRASE_TOP10;
    assert_eq!(got, expected, "phrase top-10 drifted from captured output");
}

// Captured expected data for `phrase_search_matches_captured_expected_output`.
include!("data/query_equivalence_expected.rs");

#[test]
fn bucketed_fuzzy_expansion_equals_dictionary_sweep() {
    let reports = corpus(200, 7171);
    let idx = clinical_index(&reports);
    let analyzer = Analyzer::clinical_standard();
    let analyzed: Vec<Vec<String>> = reports.iter().map(|r| analyzer.terms(&r.text)).collect();
    let mut rng = Rng::seed_from_u64(41_872);
    for _ in 0..40 {
        let base = random_term(&mut rng, &analyzed);
        let probe = if rng.below(2) == 0 {
            base
        } else {
            typo(&mut rng, &base)
        };
        for max_edits in 1..=2 {
            let pruned = QueryNode::expand_fuzzy(&idx, "body", &probe, max_edits);
            let sweep = QueryNode::expand_fuzzy_sweep(&idx, "body", &probe, max_edits);
            assert_eq!(pruned, sweep, "term {probe:?} max_edits {max_edits}");
        }
    }
}

/// Satellite 5's cache-invalidation proof at the facade level: a cached
/// query must reflect a subsequent ingest, with the hit/miss counters
/// showing the cache actually served the repeat.
#[test]
fn query_cache_never_serves_stale_results() {
    let reports = corpus(20, 1313);
    let system = Create::new(CreateConfig::default());
    for r in &reports[..19] {
        system.ingest_gold(r).unwrap();
    }
    let query = "fever and cough";
    let cold = system.search(query, 10);
    let warm = system.search(query, 10);
    let stats = system.cache_stats();
    assert_eq!(stats.hits, 1, "repeat query served from cache");
    assert_eq!(cold.len(), warm.len());
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.report_id, b.report_id);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    // Ingest one more report; the generation bump must invalidate.
    let generation_before = stats.generation;
    system.ingest_gold(&reports[19]).unwrap();
    let stats = system.cache_stats();
    assert!(stats.generation > generation_before);
    let fresh = system.search(query, 10);
    let reference = Create::new(CreateConfig::default());
    for r in &reports {
        reference.ingest_gold(r).unwrap();
    }
    let expected = reference.search(query, 10);
    assert_eq!(fresh.len(), expected.len(), "post-ingest results are fresh");
    for (a, b) in fresh.iter().zip(&expected) {
        assert_eq!(a.report_id, b.report_id);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}
