//! Kill-and-reopen durability: acknowledged writes survive a crash.
//!
//! Each scenario ingests a seeded corpus into a disk-backed platform,
//! flushes mid-stream (so part of the corpus is segment-durable and the
//! rest lives only in the WAL), then drops the system without any
//! shutdown flush — the moral equivalent of SIGKILL, since nothing is
//! persisted on drop. Reopening must recover every acknowledged write
//! and produce rankings that are **bit-identical** (report id + raw
//! score bits) to a never-crashed in-memory reference, at shard counts
//! {1, 2, 4}.
//!
//! Torn-tail scenarios then vandalise the WAL the way a power cut
//! would — truncating mid-frame or flipping a payload byte at seeded
//! offsets — and assert recovery truncates at the damage point: every
//! record before it survives, nothing after it does, and the reopened
//! system is indistinguishable from one that only ever saw the
//! surviving prefix.

use create::core::{Create, CreateConfig, MergePolicy};
use create::corpus::{CaseReport, CorpusConfig, Generator, QuerySet};
use std::path::{Path, PathBuf};

const K: usize = 10;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Rankings are compared at the bit level: id, raw score bits, source.
type Ranking = Vec<(String, u64, bool)>;

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

fn query_panel(reports: &[CaseReport]) -> Vec<String> {
    QuerySet::generate(reports, 77, 8)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect()
}

fn ranking(system: &Create, query: &str, policy: MergePolicy) -> Ranking {
    system
        .search_with_policy(query, K, policy)
        .into_iter()
        .map(|h| (h.report_id, h.score.to_bits(), h.pattern_matched))
        .collect()
}

/// An in-memory reference that never crashed: the gold standard every
/// recovered system is held to.
fn reference(reports: &[CaseReport], shards: usize) -> Create {
    let system = Create::new(CreateConfig {
        shards,
        ..Default::default()
    });
    for r in reports {
        system.ingest_gold(r).expect("reference ingest");
    }
    system
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "create-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_rankings(recovered: &Create, reference: &Create, queries: &[String], label: &str) {
    for q in queries {
        for policy in [MergePolicy::Neo4jFirst, MergePolicy::EsOnly, MergePolicy::GraphOnly] {
            assert_eq!(
                ranking(recovered, q, policy),
                ranking(reference, q, policy),
                "{label}: ranking diverged for {q:?} under {policy:?}"
            );
        }
    }
}

#[test]
fn kill_and_reopen_recovers_every_acknowledged_write() {
    let reports = corpus(40, 20260810);
    let queries = query_panel(&reports);
    let (sealed, tail) = reports.split_at(25);

    for &shards in &SHARD_COUNTS {
        let dir = fresh_dir(&format!("kill-{shards}"));
        let config = CreateConfig {
            shards,
            ..Default::default()
        };

        // Ingest with a mid-stream flush: the first 25 docs become
        // segment-durable, the last 15 are acknowledged but live only
        // in the WAL when the "crash" hits.
        {
            let system = Create::open(&dir, config.clone()).expect("first open");
            for r in sealed {
                system.ingest_gold(r).expect("ingest sealed half");
            }
            system.flush().expect("mid-stream flush");
            for r in tail {
                system.ingest_gold(r).expect("ingest WAL tail");
            }
            // Dropped without flush: nothing else is persisted.
        }

        let never_crashed = reference(&reports, shards);

        // Crash → reopen → verify, twice: the second cycle proves that
        // recovery itself (seal-at-open, ordinal reassignment) is a
        // fixed point and not a slow drift.
        for cycle in 0..2 {
            let recovered = Create::open(&dir, config.clone()).expect("reopen");
            assert_eq!(
                recovered.stats().reports,
                reports.len(),
                "{shards} shards, cycle {cycle}: zero acknowledged-write loss"
            );
            for r in &reports {
                assert!(
                    recovered.report(&r.id).is_some(),
                    "{shards} shards, cycle {cycle}: report {} lost",
                    r.id
                );
            }
            assert_same_rankings(
                &recovered,
                &never_crashed,
                &queries,
                &format!("{shards} shards, cycle {cycle}"),
            );
            // Recovery sealed the WAL tail into segments, so the
            // manifest must now account for every document.
            let stats = recovered.storage_stats().expect("disk-backed");
            assert!(stats.segments >= 1, "tail sealed into segments");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Parse the WAL's `[len][crc][payload]` framing and return each
/// record's byte offset, so damage can be aimed at a precise frame.
fn wal_frame_offsets(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + len > bytes.len() {
            break;
        }
        offsets.push((at, 8 + len));
        at += 8 + len;
    }
    offsets
}

fn shard0_wal(dir: &Path) -> PathBuf {
    dir.join(create::storage::STORAGE_DIR)
        .join("shard-0")
        .join(create::storage::WAL_FILE)
}

/// Build a single-shard durable system whose WAL holds exactly the
/// last `wal_docs` documents, then crash it.
fn crash_with_wal_tail(dir: &Path, reports: &[CaseReport], wal_docs: usize) {
    let system = Create::open(dir, CreateConfig::default()).expect("open");
    let sealed = reports.len() - wal_docs;
    for r in &reports[..sealed] {
        system.ingest_gold(r).expect("ingest sealed prefix");
    }
    system.flush().expect("flush");
    for r in &reports[sealed..] {
        system.ingest_gold(r).expect("ingest WAL tail");
    }
}

#[test]
fn torn_wal_tail_loses_only_the_torn_suffix() {
    let reports = corpus(20, 20260811);
    let queries = query_panel(&reports[..19]);
    // Seeded cut points *inside* the final frame: mid-header and
    // mid-payload tears from a seeded RNG.
    let mut rng = create::util::Rng::seed_from_u64(20260811);

    for case in 0..3 {
        let dir = fresh_dir(&format!("torn-{case}"));
        crash_with_wal_tail(&dir, &reports, 8);

        let wal = shard0_wal(&dir);
        let bytes = std::fs::read(&wal).expect("read WAL");
        let frames = wal_frame_offsets(&bytes);
        assert_eq!(frames.len(), 8, "one frame per WAL-tail doc");
        let (last_at, last_len) = *frames.last().unwrap();
        // Tear somewhere strictly inside the last frame (keep ≥1 byte
        // so the reader sees a partial record, not a clean end).
        let cut = last_at + 1 + rng.below(last_len - 1);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open WAL for truncation");
        f.set_len(cut as u64).expect("truncate");
        drop(f);

        let recovered = Create::open(&dir, CreateConfig::default()).expect("reopen after tear");
        assert_eq!(
            recovered.stats().reports,
            19,
            "case {case}: exactly the torn doc is lost"
        );
        assert!(
            recovered.report(&reports[19].id).is_none(),
            "case {case}: torn doc gone"
        );
        let never_crashed = reference(&reports[..19], 1);
        assert_same_rankings(&recovered, &never_crashed, &queries, &format!("torn case {case}"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_wal_byte_truncates_from_the_damage_point() {
    let reports = corpus(20, 20260812);
    // Flip a payload byte in the 6th of 8 WAL-tail frames: recovery
    // must keep the 5 records before it and drop it plus the 2 after.
    let dir = fresh_dir("flip");
    crash_with_wal_tail(&dir, &reports, 8);

    let wal = shard0_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read WAL");
    let frames = wal_frame_offsets(&bytes);
    assert_eq!(frames.len(), 8);
    let (at, _) = frames[5];
    bytes[at + 8 + 3] ^= 0x40; // payload byte: CRC mismatch, not a length lie
    std::fs::write(&wal, &bytes).expect("write corrupted WAL");

    let recovered = Create::open(&dir, CreateConfig::default()).expect("reopen after flip");
    let survivors = 12 + 5; // sealed prefix + clean WAL records before the damage
    assert_eq!(recovered.stats().reports, survivors);
    for r in &reports[..survivors] {
        assert!(recovered.report(&r.id).is_some(), "survivor {} lost", r.id);
    }
    for r in &reports[survivors..] {
        assert!(recovered.report(&r.id).is_none(), "{} should be gone", r.id);
    }

    let queries = query_panel(&reports[..survivors]);
    let never_crashed = reference(&reports[..survivors], 1);
    assert_same_rankings(&recovered, &never_crashed, &queries, "flipped byte");

    let _ = std::fs::remove_dir_all(&dir);
}
