//! Integration tests of the learned extraction stack: NER training with
//! and without C-FLAIR features, the temporal module's claim shape, and
//! automatic ingestion driven by trained models.

use create::core::{Create, CreateConfig};
use create::corpus::temporal_data::i2b2_like;
use create::corpus::{CorpusConfig, Generator};
use create::ner::eval::{span_f1, span_f1_with};
use create::ner::{
    CrfTagger, CrfTaggerConfig, FlairFeatures, GazetteerTagger, HmmTagger, LabelSet, NerDataset,
};
use create::temporal::model::{TemporalModel, TrainMode, TrainOptions};
use std::sync::Arc;

fn quick_config(epochs: usize) -> CrfTaggerConfig {
    CrfTaggerConfig {
        feature_bits: 17,
        train: create::ml::CrfTrainConfig {
            epochs,
            ..Default::default()
        },
        gazetteer_features: true,
    }
}

#[test]
fn ner_ladder_orders_as_expected() {
    // The E2 shape in miniature: CRF beats HMM beats gazetteer on typo'd
    // data (where exact dictionary lookup suffers).
    let reports = Generator::new(CorpusConfig {
        num_reports: 80,
        seed: 1234,
        typo_rate: 0.10,
        ..Default::default()
    })
    .generate();
    let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
    let (train, test) = dataset.split(0.8);
    let ontology = Arc::new(create::ontology::clinical_ontology());

    let gaz = GazetteerTagger::new(&ontology, LabelSet::ner_targets());
    let (gaz_prf, _) = span_f1_with(|s| gaz.tag(s), &test);

    let hmm = HmmTagger::train(&train);
    let (hmm_prf, _) = span_f1_with(|s| hmm.tag(s), &test);

    let crf = CrfTagger::train(&train, quick_config(5), Some(Arc::clone(&ontology)), None);
    let (crf_prf, _) = span_f1(&crf, &test);

    assert!(
        crf_prf.f1 > gaz_prf.f1,
        "CRF ({:.3}) must beat gazetteer ({:.3}) on noisy data",
        crf_prf.f1,
        gaz_prf.f1
    );
    assert!(
        crf_prf.f1 > hmm_prf.f1 - 0.02,
        "CRF ({:.3}) should not lose to HMM ({:.3})",
        crf_prf.f1,
        hmm_prf.f1
    );
    assert!(
        crf_prf.f1 > 0.55,
        "absolute CRF F1 too low: {:.3}",
        crf_prf.f1
    );
}

#[test]
fn flair_features_do_not_hurt() {
    let reports = Generator::new(CorpusConfig {
        num_reports: 60,
        seed: 777,
        typo_rate: 0.08,
        ..Default::default()
    })
    .generate();
    let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
    let (train, test) = dataset.split(0.8);
    let ontology = Arc::new(create::ontology::clinical_ontology());

    let crf = CrfTagger::train(&train, quick_config(4), Some(Arc::clone(&ontology)), None);
    let (base, _) = span_f1(&crf, &test);

    let flair = Arc::new(FlairFeatures::pretrain(&train.raw_text(), 5));
    let crf_flair = CrfTagger::train(
        &train,
        quick_config(4),
        Some(Arc::clone(&ontology)),
        Some(flair),
    );
    let (with_flair, _) = span_f1(&crf_flair, &test);
    assert!(
        with_flair.f1 >= base.f1 - 0.03,
        "C-FLAIR features regressed F1: {:.3} vs {:.3}",
        with_flair.f1,
        base.f1
    );
}

#[test]
fn temporal_claim_shape_holds() {
    // E3 in miniature: PSL + global inference ≥ local baseline.
    let ds = i2b2_like(2024, 120);
    let (train, test) = ds.split(0.8);
    let local = TemporalModel::train(
        &train,
        &ds.labels,
        &TrainOptions {
            mode: TrainMode::Local,
            epochs: 10,
            ..Default::default()
        },
    );
    let (local_f1, _) = local.evaluate(&test);
    let full = TemporalModel::train(
        &train,
        &ds.labels,
        &TrainOptions {
            mode: TrainMode::PslRegularized,
            epochs: 10,
            ..Default::default()
        },
    );
    let (full_f1, _) = full.evaluate(&test);
    assert!(local_f1 > 0.55, "local baseline too weak: {local_f1:.3}");
    assert!(
        full_f1 >= local_f1 - 0.005,
        "PSL+GI ({full_f1:.3}) must not lose to local ({local_f1:.3})"
    );
}

#[test]
fn automatic_ingestion_builds_searchable_system() {
    // Train a tagger, ingest *raw text* (no gold annotations), and verify
    // the resulting system can answer concept queries via the graph.
    let reports = Generator::new(CorpusConfig {
        num_reports: 60,
        seed: 31,
        ..Default::default()
    })
    .generate();
    let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
    let system = Create::new(CreateConfig::default());
    let tagger = CrfTagger::train(&dataset, quick_config(5), Some(system.ontology()), None);
    system.attach_tagger(tagger);

    // Ingest 20 raw narratives through automatic extraction.
    for (i, r) in reports.iter().take(20).enumerate() {
        system
            .ingest_text(&format!("auto:{i}"), &r.title, &r.text, r.metadata.year)
            .expect("auto ingest");
    }
    let stats = system.stats();
    assert_eq!(stats.reports, 20);
    assert!(
        stats.graph_nodes > 40,
        "auto extraction produced too few graph nodes: {}",
        stats.graph_nodes
    );

    // Graph-only search finds documents by extracted concepts.
    let hits = system.search_with_policy("fever", 10, create::core::MergePolicy::GraphOnly);
    let fevered = reports
        .iter()
        .take(20)
        .filter(|r| r.text.to_lowercase().contains("fever"))
        .count();
    if fevered > 0 {
        assert!(
            !hits.is_empty(),
            "{fevered} ingested docs mention fever but graph search found none"
        );
    }
}
