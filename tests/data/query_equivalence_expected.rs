// Expected top hits for the phrase ["chest", "pain"] over the body field
// of the 200-report corpus seeded with 7171, captured from the exhaustive
// executor (`Index::search_exhaustive`). Scores are stored as `f64` bit
// patterns so the comparison is exact, not approximate.
const EXPECTED_PHRASE_TOP10: &[(&str, u64)] = &[
    ("pmid:30000147", 4622600664512560175),
    ("pmid:30000179", 4618761475480548278),
    ("pmid:30000016", 4618701273057028123),
    ("pmid:30000040", 4618642086470042641),
    ("pmid:30000093", 4618583890223346019),
    ("pmid:30000132", 4618583890223346019),
    ("pmid:30000045", 4618526659666845790),
    ("pmid:30000129", 4618526659666845790),
    ("pmid:30000096", 4618470370961789680),
];
