//! Sharding must be invisible to every read surface.
//!
//! The same seeded corpus is ingested at shard counts {1, 2, 4, 7} — a
//! power-of-two spread plus a prime that exercises uneven routing — and
//! every configuration is held to the single-shard baseline:
//!
//! * **Rankings** are compared at the bit level (report id + raw score
//!   bits) for a query panel, under every merge policy. Scatter-gather
//!   runs per-shard DAAT under globally merged corpus statistics and
//!   merges on `(score, global ingest ordinal)`, so there is no "close
//!   enough" here — any deviation is a determinism bug.
//! * **Stats** (`/stats`-surface report counts) must match: routing must
//!   neither lose nor duplicate documents.
//! * **Cache staleness** must behave identically: a write through any
//!   shard bumps the composite generation, so cached results die on
//!   first touch after a publish, exactly as at N=1.

use create::core::{Create, CreateConfig, MergePolicy};
use create::corpus::{CaseReport, CorpusConfig, Generator, QuerySet};

const N_DOCS: usize = 60;
const K: usize = 10;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Rankings are compared at the bit level: id, raw score bits, source.
type Ranking = Vec<(String, u64, bool)>;

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

fn sharded(reports: &[CaseReport], shards: usize) -> Create {
    let system = Create::new(CreateConfig {
        shards,
        ..Default::default()
    });
    assert_eq!(system.shard_count(), shards);
    system
        .ingest_gold_batch(reports, 0)
        .expect("batch ingest succeeds at every shard count");
    system
}

fn ranking(system: &Create, query: &str, policy: MergePolicy) -> Ranking {
    system
        .search_with_policy(query, K, policy)
        .into_iter()
        .map(|h| (h.report_id, h.score.to_bits(), h.pattern_matched))
        .collect()
}

#[test]
fn rankings_are_bit_identical_across_shard_counts() {
    let reports = corpus(N_DOCS, 20260807);
    let queries: Vec<String> = QuerySet::generate(&reports, 99, 12)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();
    let policies = [
        MergePolicy::Neo4jFirst,
        MergePolicy::EsFirst,
        MergePolicy::EsOnly,
        MergePolicy::GraphOnly,
        MergePolicy::Interleave,
    ];

    let baseline = sharded(&reports, 1);
    for &shards in &SHARD_COUNTS[1..] {
        let system = sharded(&reports, shards);
        for q in &queries {
            for policy in policies {
                assert_eq!(
                    ranking(&system, q, policy),
                    ranking(&baseline, q, policy),
                    "ranking diverged at {shards} shards for {q:?} under {policy:?}"
                );
            }
        }
    }
}

#[test]
fn stats_and_lookups_match_the_single_shard_baseline() {
    let reports = corpus(N_DOCS, 20260808);
    let baseline = sharded(&reports, 1);
    let base_stats = baseline.stats();
    assert_eq!(base_stats.reports, N_DOCS);

    for &shards in &SHARD_COUNTS[1..] {
        let system = sharded(&reports, shards);
        let stats = system.stats();
        // Report counts must be exact: routing loses or duplicates
        // nothing. (Graph node counts legitimately differ at N > 1 —
        // concept nodes are per-shard — so only document-derived counts
        // are compared.)
        assert_eq!(stats.reports, base_stats.reports, "{shards} shards");
        // Every document is retrievable from its owning shard.
        for r in &reports {
            assert!(system.report(&r.id).is_some(), "report {} at {shards}", r.id);
            assert!(
                system.annotations(&r.id).is_some(),
                "annotations {} at {shards}",
                r.id
            );
        }
        // The composite generation is the sum of the per-shard stamps,
        // and every batch bumped each touched shard exactly once.
        let gens = system.shard_generations();
        assert_eq!(gens.len(), shards);
        assert_eq!(gens.iter().sum::<u64>(), system.snapshot().generation());
        assert!(gens.iter().all(|&g| g <= 1), "one batch → at most one bump");
    }
}

#[test]
fn cache_staleness_tracks_the_composite_generation_at_any_shard_count() {
    let reports = corpus(N_DOCS, 20260809);
    let (seed_reports, extra) = reports.split_at(N_DOCS - SHARD_COUNTS.len());

    for &shards in &SHARD_COUNTS {
        let system = sharded(seed_reports, shards);
        let query = "fever and cough";

        // Cold → miss; warm → hit, at every shard count.
        let cold = ranking(&system, query, MergePolicy::Neo4jFirst);
        let warm = ranking(&system, query, MergePolicy::Neo4jFirst);
        assert_eq!(cold, warm, "{shards} shards");
        let stats = system.cache_stats();
        assert_eq!(stats.hits, 1, "warm query hits the cache at {shards} shards");

        // A write through ANY single shard (one doc routes to exactly
        // one) bumps the composite generation and invalidates the cached
        // entry on first touch — staleness is indistinguishable from the
        // single-shard system.
        let gen_before = system.cache_stats().generation;
        system
            .ingest_gold(&extra[0])
            .expect("post-cache ingest succeeds");
        assert_eq!(
            system.cache_stats().generation,
            gen_before + 1,
            "one write bumps the composite generation by one at {shards} shards"
        );
        let misses_before = system.cache_stats().misses;
        let _ = system.search_with_policy(query, K, MergePolicy::Neo4jFirst);
        assert_eq!(
            system.cache_stats().misses,
            misses_before + 1,
            "the stale entry dies as a miss at {shards} shards"
        );
    }
}
