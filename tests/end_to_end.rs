//! End-to-end integration tests spanning the whole workspace: corpus →
//! ingestion → three stores → search → visualization → REST API.

use create::core::{Create, CreateConfig, MergePolicy};
use create::corpus::{CorpusConfig, Generator, QueryFamily, QuerySet};
use create::graphdb::exec::run;
use create::server::server::{http_get, http_post};
use create::server::{build_api, Server};
use std::sync::Arc;

fn loaded(n: usize, seed: u64) -> (Create, Vec<create::corpus::CaseReport>) {
    let reports = Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate();
    let system = Create::new(CreateConfig::default());
    for r in &reports {
        system.ingest_gold(r).expect("ingest");
    }
    (system, reports)
}

#[test]
fn full_pipeline_search_quality() {
    let (system, reports) = loaded(150, 42);
    let queries = QuerySet::generate(&reports, 43, 24);
    // CREATe-IR should place a relevant document in the top-10 for the
    // clear majority of queries, and beat the keyword-only baseline on
    // temporal queries.
    let mut ir_hits = 0usize;
    for q in &queries.queries {
        let ids: Vec<String> = system
            .search(&q.text, 10)
            .into_iter()
            .map(|h| h.report_id)
            .collect();
        if ids.iter().any(|id| q.judgments.contains_key(id)) {
            ir_hits += 1;
        }
    }
    assert!(
        ir_hits * 3 >= queries.queries.len() * 2,
        "CREATe-IR found relevant docs for only {ir_hits}/{}",
        queries.queries.len()
    );

    let temporal = queries.of_family(QueryFamily::Temporal);
    let mut ir_better_or_equal = 0usize;
    for q in &temporal {
        let count_rel = |policy: MergePolicy| {
            system
                .search_with_policy(&q.text, 10, policy)
                .iter()
                .filter(|h| q.judgments.contains_key(&h.report_id))
                .count()
        };
        if count_rel(MergePolicy::Neo4jFirst) >= count_rel(MergePolicy::EsOnly) {
            ir_better_or_equal += 1;
        }
    }
    assert!(
        ir_better_or_equal * 3 >= temporal.len() * 2,
        "graph engine underperformed keyword on temporal queries: {ir_better_or_equal}/{}",
        temporal.len()
    );
}

#[test]
fn graph_is_cypher_queryable_after_ingest() {
    let (system, _) = loaded(30, 7);
    let out = run(
        &mut *system.graph_mut(),
        "MATCH (r:Report)-[:MENTIONS]->(c:Concept) RETURN COUNT(*)",
    )
    .expect("cypher");
    let count = match &out.rows[0][0] {
        create::graphdb::ResultValue::Value(v) => v.as_f64().unwrap(),
        other => panic!("unexpected {other:?}"),
    };
    assert!(count > 100.0, "too few MENTIONS edges: {count}");

    // A relation-style query (the Fig-6 graph path) returns rows.
    let out = run(
        &mut *system.graph_mut(),
        "MATCH (a:Event)-[:BEFORE]->(b:Event) RETURN a.reportId LIMIT 5",
    )
    .expect("cypher");
    assert!(!out.rows.is_empty());
}

#[test]
fn annotations_export_is_valid_brat() {
    let (system, reports) = loaded(10, 8);
    for r in &reports {
        let brat = system.annotations(&r.id).expect("annotation doc");
        brat.validate(&r.text).expect("valid standoff");
        // Round-trip through the parser.
        let reparsed = create::annotate::BratDocument::parse(&brat.serialize()).unwrap();
        assert_eq!(reparsed.text_bounds.len(), r.entities.len());
    }
}

#[test]
fn visualization_svg_is_wellformed_for_every_report() {
    let (system, reports) = loaded(10, 9);
    for r in &reports {
        let svg = system.visualize(&r.id).expect("svg");
        let parsed = create::grobid::parse_xml(&svg).expect("well-formed SVG");
        assert_eq!(parsed.name, "svg");
        assert!(!parsed.descendants("circle").is_empty());
    }
}

#[test]
fn rest_api_serves_the_whole_surface() {
    let (system, reports) = loaded(20, 10);
    let id = reports[0].id.clone();
    let shared = Arc::new(system);
    let server = Server::bind("127.0.0.1:0", build_api(shared)).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let t = std::thread::spawn(move || server.serve());

    let (status, body) = http_get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"reports\":20"));

    let (status, body) = http_get(addr, "/search?q=fever+and+cough&k=5").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"hits\""));

    let (status, _) = http_get(addr, &format!("/reports/{id}")).unwrap();
    assert_eq!(status, 200);
    let (status, ann) = http_get(addr, &format!("/reports/{id}/annotations")).unwrap();
    assert_eq!(status, 200);
    assert!(ann.starts_with('T'));
    let (status, svg) = http_get(addr, &format!("/reports/{id}/graph.svg")).unwrap();
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"));

    // Submitting without a tagger is a clean client error, not a crash.
    let (status, _) = http_post(
        addr,
        "/submit",
        r#"{"id": "user:t", "title": "x", "text": "fever."}"#,
    )
    .unwrap();
    assert_eq!(status, 400);

    handle.shutdown();
    t.join().unwrap();
}

#[test]
fn docstore_persistence_survives_reload() {
    use create::docstore::{json::obj, DocStore, Filter};
    let dir = std::env::temp_dir().join(format!("create-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = DocStore::open(&dir).unwrap();
        let reports = Generator::new(CorpusConfig {
            num_reports: 5,
            seed: 11,
            ..Default::default()
        })
        .generate();
        for r in &reports {
            store
                .insert(
                    "reports",
                    obj([
                        ("_id", r.id.clone().into()),
                        ("title", r.title.clone().into()),
                        ("text", r.text.clone().into()),
                    ]),
                )
                .unwrap();
        }
        store.flush().unwrap();
    }
    let store = DocStore::open(&dir).unwrap();
    assert_eq!(store.count("reports", &Filter::All), 5);
    let doc = store
        .find_one("reports", &Filter::contains("title", "case"))
        .unwrap();
    assert!(doc.get("text").is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn platform_persistence_round_trip() {
    // Ingest into a disk-backed platform, flush, reopen, and verify the
    // graph/index rebuild reproduces search behaviour.
    let dir = std::env::temp_dir().join(format!("create-e2e-platform-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reports = Generator::new(CorpusConfig {
        num_reports: 25,
        seed: 77,
        ..Default::default()
    })
    .generate();
    let query = "A patient was admitted to the hospital because of fever and cough.";
    let before_hits: Vec<String>;
    {
        let system = Create::open(&dir, CreateConfig::default()).unwrap();
        for r in &reports {
            system.ingest_gold(r).unwrap();
        }
        before_hits = system
            .search(query, 10)
            .into_iter()
            .map(|h| h.report_id)
            .collect();
        system.flush().unwrap();
    }
    let reopened = Create::open(&dir, CreateConfig::default()).unwrap();
    let stats = reopened.stats();
    assert_eq!(stats.reports, 25);
    assert!(stats.graph_nodes > 25, "graph not rebuilt: {stats:?}");
    let after_hits: Vec<String> = reopened
        .search(query, 10)
        .into_iter()
        .map(|h| h.report_id)
        .collect();
    assert_eq!(before_hits, after_hits, "search changed across restart");
    // Annotations survive too.
    assert!(reopened.annotations(&reports[0].id).is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}
