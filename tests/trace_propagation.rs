//! End-to-end trace propagation across shards and pool workers.
//!
//! One request must produce ONE coherent span tree no matter how the
//! work fans out: `/search` scatter-gathers across shards on the
//! global pool, and `/search_batch` additionally dispatches each query
//! to a pool worker. At shard counts {1, 2, 4} the recorded tree must
//! carry exactly one keyword-shard (and graph-shard) span per shard
//! per query, every span must chain up to the root through parent
//! links, and the trace ID in the `X-Trace-Id` response header must
//! resolve in the flight recorder. Tracing itself must be inert:
//! rankings are bit-identical whether span recording is sampled in or
//! out.

use create::core::{Create, CreateConfig};
use create::corpus::{CaseReport, CorpusConfig, Generator};
use create::docstore::json::{parse_json, Value};
use create::server::{build_api, Request, Response, Status};
use std::collections::HashMap;
use std::sync::Mutex;

/// The flight recorder, sampling rate, and slowlog are process-global;
/// tests that touch them run serialized.
static SERIAL: Mutex<()> = Mutex::new(());

const N_DOCS: usize = 40;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

fn sharded(reports: &[CaseReport], shards: usize) -> Create {
    let system = Create::new(CreateConfig {
        shards,
        ..Default::default()
    });
    system.ingest_gold_batch(reports, 0).expect("ingest");
    system
}

fn get(path: &str, query: &[(&str, &str)]) -> Request {
    Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query: query
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        headers: HashMap::new(),
        body: Vec::new(),
    }
}

fn post(path: &str, body: &str) -> Request {
    let mut req = get(path, &[]);
    req.method = "POST".to_string();
    req.body = body.as_bytes().to_vec();
    req
}

/// Follows the response's `X-Trace-Id` into the flight recorder and
/// returns (trace id, parsed span list).
fn fetch_trace(api: &create::server::Router, resp: &Response) -> (String, Vec<Value>) {
    let trace_id = resp.header("X-Trace-Id").expect("trace header").to_string();
    let trace = api.dispatch(&get(&format!("/trace/{trace_id}"), &[]));
    assert_eq!(
        trace.status,
        Status::Ok,
        "trace {trace_id} not recorded: {}",
        String::from_utf8_lossy(&trace.body)
    );
    let doc = parse_json(std::str::from_utf8(&trace.body).unwrap()).unwrap();
    assert_eq!(
        doc.get("traceId").and_then(Value::as_str),
        Some(trace_id.as_str()),
        "recorded trace carries the header's id"
    );
    let spans = doc.get("spans").unwrap().as_array().unwrap().to_vec();
    (trace_id, spans)
}

fn spans_named<'a>(spans: &'a [Value], name: &str) -> Vec<&'a Value> {
    spans
        .iter()
        .filter(|s| s.get("name").and_then(Value::as_str) == Some(name))
        .collect()
}

/// Every span must reach the root (id 1) through parent links.
fn assert_parent_linkage(spans: &[Value]) {
    let ids: HashMap<i64, i64> = spans
        .iter()
        .map(|s| {
            (
                s.get("id").and_then(Value::as_i64).unwrap(),
                s.get("parent").and_then(Value::as_i64).unwrap(),
            )
        })
        .collect();
    for (&id, _) in &ids {
        let mut current = id;
        let mut hops = 0;
        while current != 1 {
            current = *ids
                .get(&current)
                .and_then(|p| ids.contains_key(p).then_some(p))
                .unwrap_or_else(|| panic!("span {id} has a dangling parent chain at {current}"));
            hops += 1;
            assert!(hops < 32, "span {id} parent chain does not terminate");
        }
    }
}

#[test]
fn one_span_tree_per_request_at_every_shard_count() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let prior_rate = create::obs::trace_sample_rate();
    create::obs::set_trace_sample_rate(1.0);
    let reports = corpus(N_DOCS, 20260810);

    for &shards in &SHARD_COUNTS {
        let api = build_api(sharded(&reports, shards).into());

        // Shard-fanned single search: exactly one keyword/graph shard
        // span per shard, all under one trace.
        let resp = api.dispatch(&get("/search", &[("q", "fever and cough"), ("k", "5")]));
        assert_eq!(resp.status, Status::Ok);
        let (_, spans) = fetch_trace(&api, &resp);
        assert_parent_linkage(&spans);
        for name in ["keyword_shard", "graph_shard"] {
            let shard_spans = spans_named(&spans, name);
            assert_eq!(
                shard_spans.len(),
                shards,
                "{name}: one child span per shard at {shards} shards: {spans:?}"
            );
            let mut seen: Vec<i64> = shard_spans
                .iter()
                .map(|s| s.get("shard").and_then(Value::as_i64).unwrap())
                .collect();
            seen.sort_unstable();
            let want: Vec<i64> = (0..shards as i64).collect();
            assert_eq!(seen, want, "{name} spans cover every shard index once");
        }

        // Batch search through the pool: each query's worker inherits
        // the dispatching request's context, so the one tree holds a
        // search span per query and queries × shards shard spans. The
        // queries differ from the warmed single search above — a cache
        // hit would skip the shard fan-out entirely.
        let resp = api.dispatch(&post(
            "/search_batch",
            r#"{"queries": ["headache with nausea", "chest pain"], "k": 5}"#,
        ));
        assert_eq!(resp.status, Status::Ok);
        let (_, spans) = fetch_trace(&api, &resp);
        assert_parent_linkage(&spans);
        let search_spans = spans_named(&spans, "search");
        assert_eq!(search_spans.len(), 2, "one search span per batched query");
        for span in &search_spans {
            assert_eq!(
                span.get("parent").and_then(Value::as_i64),
                Some(1),
                "pool-worker search spans parent to the request root"
            );
        }
        assert_eq!(
            spans_named(&spans, "keyword_shard").len(),
            2 * shards,
            "queries x shards keyword fan-out spans at {shards} shards"
        );
    }
    create::obs::set_trace_sample_rate(prior_rate);
}

#[test]
fn batch_slowlog_entries_carry_the_request_trace_id() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let reports = corpus(N_DOCS, 20260811);
    let api = build_api(sharded(&reports, 2).into());

    let prior = create::obs::slow_query_threshold();
    create::obs::set_slow_query_threshold(std::time::Duration::ZERO);
    create::obs::clear_slow_queries();
    let resp = api.dispatch(&post(
        "/search_batch",
        r#"{"queries": ["fever and cough", "chest pain"], "k": 5}"#,
    ));
    create::obs::set_slow_query_threshold(prior);
    assert_eq!(resp.status, Status::Ok);
    let trace_id = resp.header("X-Trace-Id").expect("trace header").to_string();

    // Both batched queries ran on pool workers, yet their slowlog
    // entries carry the dispatching request's trace ID — the context
    // propagated across the pool boundary.
    let slow = create::obs::slow_queries();
    assert!(slow.len() >= 2, "both batched queries captured");
    for entry in &slow {
        let id = entry.trace_id.as_deref().expect("slowlog entry has a trace id");
        assert!(!id.is_empty());
        assert_eq!(id, trace_id, "pool-worker query inherited the request trace");
    }
}

#[test]
fn rankings_are_bit_identical_with_tracing_sampled_out() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let reports = corpus(N_DOCS, 20260812);
    let system = sharded(&reports, 4);
    let queries = ["fever and cough", "chest pain", "headache with nausea"];

    let prior_rate = create::obs::trace_sample_rate();
    let ranking = |sys: &Create| -> Vec<Vec<(String, u64)>> {
        queries
            .iter()
            .map(|q| {
                sys.search(q, 10)
                    .into_iter()
                    .map(|h| (h.report_id, h.score.to_bits()))
                    .collect()
            })
            .collect()
    };

    create::obs::set_trace_sample_rate(1.0);
    let traced = ranking(&system);
    create::obs::set_trace_sample_rate(0.0);
    let untraced = ranking(&system);
    create::obs::set_trace_sample_rate(prior_rate);

    assert_eq!(
        traced, untraced,
        "span recording must not perturb scoring or merge order"
    );
}
