//! Integration tests for the database substrates working together:
//! Cypher over graphs built from JSON documents, index/docstore
//! consistency, and the analyzer → index → query loop.

use create::docstore::{json::obj, parse_json, DocStore, Filter, Value};
use create::graphdb::exec::run;
use create::graphdb::{PropertyGraph, ResultValue};
use create::index::{Index, QueryNode, Scorer};

#[test]
fn cypher_create_then_match_round_trip() {
    let mut g = PropertyGraph::new();
    run(
        &mut g,
        "CREATE (a:Concept {label: 'fever', entityType: 'Sign_symptom'})-[:BEFORE]->(b:Concept {label: 'death', entityType: 'Outcome'})",
    )
    .unwrap();
    run(
        &mut g,
        "CREATE (c:Concept {label: 'cough', entityType: 'Sign_symptom'})",
    )
    .unwrap();
    let out = run(
        &mut g,
        "MATCH (a:Concept)-[r:BEFORE]->(b) WHERE a.entityType = 'Sign_symptom' RETURN a.label, b.label",
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(
        out.rows[0][0],
        ResultValue::Value(Value::String("fever".into()))
    );
    let count = run(&mut g, "MATCH (c:Concept) RETURN COUNT(*)").unwrap();
    assert_eq!(count.rows[0][0], ResultValue::Value(Value::Number(3.0)));
}

#[test]
fn docstore_and_index_stay_consistent() {
    // Insert the same documents into both; every index hit must be
    // retrievable from the store, with the hit term present.
    let store = DocStore::in_memory();
    let mut index = Index::clinical();
    let docs = [
        (
            "d1",
            "Atrial fibrillation after surgery",
            "The patient developed atrial fibrillation.",
        ),
        (
            "d2",
            "Pneumonia case",
            "Severe pneumonia with fever and cough.",
        ),
        (
            "d3",
            "Stroke registry note",
            "An ischemic stroke was confirmed.",
        ),
    ];
    for (id, title, body) in docs {
        store
            .insert(
                "reports",
                obj([
                    ("_id", id.into()),
                    ("title", title.into()),
                    ("text", body.into()),
                ]),
            )
            .unwrap();
        index
            .add_document(
                id,
                &[("title", title), ("body", body), ("body_ngram", body)],
            )
            .unwrap();
    }
    let hits = index.search(
        &QueryNode::query_string(&index, "body", "fever"),
        10,
        Scorer::default(),
    );
    assert_eq!(hits.len(), 1);
    let doc = store
        .get("reports", &hits[0].external_id)
        .expect("in store");
    assert!(doc
        .get("text")
        .unwrap()
        .as_str()
        .unwrap()
        .to_lowercase()
        .contains("fever"));
    // Deleting from the store leaves a dangling index hit — the platform
    // layer is responsible for coordinated deletes; here we just document
    // the invariant check API.
    assert_eq!(store.delete("reports", &Filter::eq("_id", "d2")), 1);
    assert!(store.get("reports", "d2").is_none());
}

#[test]
fn json_values_flow_through_graph_properties() {
    // Graph properties are docstore JSON values; complex values survive
    // the round trip through the Cypher executor's projections.
    let mut g = PropertyGraph::new();
    g.create_node(
        ["Report"],
        vec![
            ("reportId", Value::String("pmid:9".into())),
            ("year", Value::Number(2018.0)),
            ("reviewed", Value::Bool(true)),
        ],
    );
    let out = run(
        &mut g,
        "MATCH (r:Report) WHERE r.year < 2020 AND r.reviewed = true RETURN r.reportId, r.year",
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][1], ResultValue::Value(Value::Number(2018.0)));
}

#[test]
fn analyzer_choice_changes_match_behaviour() {
    // The same query against standard vs n-gram fields demonstrates the
    // E8 effect at unit scale.
    let mut index = Index::clinical();
    index
        .add_document(
            "d",
            &[
                ("title", "Amiodarone toxicity"),
                ("body", "Long-term amiodarone use caused toxicity."),
                ("body_ngram", "Long-term amiodarone use caused toxicity."),
            ],
        )
        .unwrap();
    // Partial term: standard field misses, n-gram field hits.
    let std_q = QueryNode::query_string(&index, "body", "amiodar");
    assert!(index.search(&std_q, 5, Scorer::default()).is_empty());
    let ngram_q = QueryNode::query_string(&index, "body_ngram", "amiodar");
    assert_eq!(index.search(&ngram_q, 5, Scorer::default()).len(), 1);
}

#[test]
fn stored_json_documents_reparse_identically() {
    let store = DocStore::in_memory();
    let original = obj([
        ("_id", "x".into()),
        ("nested", obj([("k", vec!["a", "b"].into())])),
        ("n", 1.5.into()),
    ]);
    store.insert("c", original.clone()).unwrap();
    let fetched = store.get("c", "x").unwrap();
    let reparsed = parse_json(&fetched.to_json()).unwrap();
    assert_eq!(reparsed, original);
}
