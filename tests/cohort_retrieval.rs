//! Cohort retrieval end to end: gold precision/recall, shard
//! invariance, plan equivalence, staging/coding facets, and mixed
//! segment-format migration.
//!
//! The gold workload ([`create::corpus::gold_cohorts`]) pairs each
//! criteria query with an **independent** evaluator over the corpus's
//! gold labels. The engine answers the same criteria from its facet
//! bitmaps and property graph — so set agreement here is the paper-style
//! retrieval experiment for cohort queries, measured exactly:
//!
//! * **Precision/recall = 1.0** against the gold evaluator (the specs
//!   are keyword-free with `k` above every cohort size, so the engine's
//!   eligible set must *equal* the gold set — no ranking slack);
//! * **Bit-identical across shard counts** {1, 2, 4, 7} and between the
//!   `Optimized` (bitmap pushdown) and `Naive` (rank-then-filter)
//!   physical plans — sharding and plan choice are invisible;
//! * **Staging/coding cohorts** answer from the rule extractors' `tnm`
//!   and `icd` facets on crafted texts;
//! * **Mixed-format data dirs** (a format-2 segment sealed before the
//!   facet region existed, next to a format-3 one) reopen and answer
//!   cohorts identically to a never-migrated reference.

use create::core::{Create, CreateConfig, PlanMode};
use create::corpus::{gold_cohorts, CaseReport, CorpusConfig, Generator};
use create::docstore::json::parse_json;
use create::ontology::clinical_ontology;
use create::storage::segment::{read_segment, write_segment_legacy_v2};
use create::storage::Manifest;
use std::path::PathBuf;

const N_DOCS: usize = 120;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

fn sharded(reports: &[CaseReport], shards: usize) -> Create {
    let system = Create::new(CreateConfig {
        shards,
        ..Default::default()
    });
    system.ingest_gold_batch(reports, 0).expect("ingest");
    system
}

/// Runs a criteria-JSON string and returns the full rendered result —
/// hit ids, raw score bits via the JSON float rendering, total, facet
/// counts — as the comparison unit for every equivalence check.
fn cohort_body(system: &Create, criteria: &str) -> String {
    let json = parse_json(criteria).expect("criteria parses");
    system
        .cohort_from_json(&json)
        .expect("criteria accepted")
        .to_json()
        .to_json()
}

fn hit_ids(system: &Create, criteria: &str) -> Vec<String> {
    let json = parse_json(criteria).expect("criteria parses");
    system
        .cohort_from_json(&json)
        .expect("criteria accepted")
        .hits
        .into_iter()
        .map(|h| h.report_id)
        .collect()
}

#[test]
fn gold_cohorts_are_retrieved_with_perfect_precision_and_recall() {
    let reports = corpus(N_DOCS, 20260815);
    let ontology = clinical_ontology();
    let system = sharded(&reports, 2);

    let mut nonempty = 0usize;
    for spec in gold_cohorts() {
        let gold = {
            let mut ids = spec.expected_ids(&reports, &ontology);
            ids.sort();
            ids
        };
        let json = parse_json(&spec.criteria_json()).expect("criteria parses");
        let result = system.cohort_from_json(&json).expect("criteria accepted");
        let engine = {
            let mut ids: Vec<String> =
                result.hits.iter().map(|h| h.report_id.clone()).collect();
            ids.sort();
            ids
        };
        // The specs are keyword-free with k above every cohort size, so
        // the retrieved set must equal the gold set: any false positive
        // is a precision miss, any dropped report a recall miss.
        assert_eq!(
            engine, gold,
            "{}: engine cohort disagrees with gold evaluation",
            spec.name
        );
        assert_eq!(
            result.total_matched,
            gold.len() as u64,
            "{}: totalMatched must count the whole cohort",
            spec.name
        );
        if !gold.is_empty() {
            nonempty += 1;
        }
        // Facet aggregations count only matched reports: no value's
        // count may exceed the cohort size, and a facet that covers
        // every report (category, year) partitions it exactly.
        for fc in &result.facets {
            let sum: u64 = fc.counts.iter().map(|(_, c)| c).sum();
            assert!(
                sum <= result.total_matched,
                "{}: facet {} counted {sum} > {} matched",
                spec.name,
                fc.field.label(),
                result.total_matched
            );
            if matches!(fc.field.label(), "category" | "year") {
                assert_eq!(
                    sum, result.total_matched,
                    "{}: {} must partition the cohort",
                    spec.name,
                    fc.field.label()
                );
            }
        }
    }
    assert!(
        nonempty >= 10,
        "only {nonempty} gold cohorts matched — the experiment lost its teeth"
    );
}

#[test]
fn cohort_results_are_bit_identical_across_shard_counts() {
    let reports = corpus(N_DOCS, 20260816);
    // The gold specs (keyword-free) plus keyword-bearing criteria, so
    // shard invariance covers both the ordinal-ordered and the
    // score-ranked merge paths.
    let mut panel: Vec<String> = gold_cohorts().iter().map(|s| s.criteria_json()).collect();
    panel.push(
        r#"{"filters":[{"field":"sex","values":["female"]}],
            "keywords":"fatigue and weight loss","k":10}"#
            .to_string(),
    );
    panel.push(
        r#"{"filters":[{"field":"category","values":["cancer","cardiovascular"]}],
            "keywords":"chest pain","facets":["year"],"k":7}"#
            .to_string(),
    );
    panel.push(
        r#"{"keywords":"fever","temporal":[{"a":"fever","op":"within","days":600,"b":"malaise"}],
            "facets":["category","sex"],"k":5}"#
            .to_string(),
    );

    let baseline = sharded(&reports, 1);
    let expected: Vec<String> = panel.iter().map(|c| cohort_body(&baseline, c)).collect();
    for &shards in &SHARD_COUNTS[1..] {
        let system = sharded(&reports, shards);
        for (criteria, want) in panel.iter().zip(&expected) {
            assert_eq!(
                &cohort_body(&system, criteria),
                want,
                "cohort diverged at {shards} shards for {criteria}"
            );
        }
    }
}

#[test]
fn optimized_and_naive_plans_return_identical_results() {
    let reports = corpus(N_DOCS, 20260817);
    let ontology = clinical_ontology();
    let mut panel: Vec<String> = gold_cohorts().iter().map(|s| s.criteria_json()).collect();
    panel.push(
        r#"{"filters":[{"field":"category","values":["infectious"]}],
            "keywords":"fever and malaise","facets":["sex"],"k":8}"#
            .to_string(),
    );

    for &shards in &[1usize, 4] {
        let system = sharded(&reports, shards);
        for criteria in &panel {
            let json = parse_json(criteria).unwrap();
            let parsed =
                create::core::plan::parse_cohort_criteria(&json, &ontology).expect("criteria");
            let optimized = system.cohort_with_mode(&parsed, PlanMode::Optimized);
            let naive = system.cohort_with_mode(&parsed, PlanMode::Naive);
            assert_eq!(
                optimized.to_json().to_json(),
                naive.to_json().to_json(),
                "pushdown changed answers at {shards} shards for {criteria}"
            );
        }
    }
}

#[test]
fn staging_and_coding_facets_answer_cohorts() {
    // Plant staging/coding strings in report bodies: the `tnm`/`icd`
    // facets are rule-extracted from text at ingest, so these cohorts
    // exercise the extractor → bitmap → pushdown chain end to end.
    let mut reports = corpus(12, 20260818);
    for r in &mut reports[0..3] {
        r.text.push_str(" Staging was pT2N0M0; the tumor was coded C50.9.");
    }
    for r in &mut reports[3..5] {
        r.text.push_str(" Staging was pT4N1M1, coded as J18.9.");
    }
    let expect = |range: std::ops::Range<usize>| -> Vec<String> {
        let mut ids: Vec<String> = reports[range].iter().map(|r| r.id.clone()).collect();
        ids.sort();
        ids
    };
    let system = sharded(&reports, 2);

    let cases = [
        (r#"{"filters":[{"field":"tnm","values":["T2"]}],"k":100}"#, expect(0..3)),
        (r#"{"filters":[{"field":"icd","values":["C50.9"]}],"k":100}"#, expect(0..3)),
        (r#"{"filters":[{"field":"tnm","values":["T4"]}],"k":100}"#, expect(3..5)),
        (r#"{"filters":[{"field":"icd","values":["J18.9"]}],"k":100}"#, expect(3..5)),
        (
            r#"{"filters":[{"field":"tnm","values":["N0"]},{"field":"icd","values":["C50.9"]}],"k":100}"#,
            expect(0..3),
        ),
        (r#"{"filters":[{"field":"tnm","values":["M1"]},{"field":"icd","values":["C50.9"]}],"k":100}"#, vec![]),
    ];
    for (criteria, want) in cases {
        let mut got = hit_ids(&system, criteria);
        got.sort();
        assert_eq!(got, want, "criteria {criteria}");
    }

    // The staging facet aggregates over a staged sub-cohort.
    let body = cohort_body(
        &system,
        r#"{"filters":[{"field":"entity_type","values":["Sign_symptom"]}],"facets":["tnm"],"k":100}"#,
    );
    let doc = parse_json(&body).unwrap();
    let facets = doc.get("facets").unwrap().as_array().unwrap();
    let counts = facets[0].get("counts").unwrap().as_array().unwrap();
    assert!(
        counts.iter().any(|c| {
            c.get("value").and_then(create::docstore::Value::as_str) == Some("T2")
        }),
        "tnm facet counts surface the planted staging: {body}"
    );
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "create-cohort-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_format_segments_reopen_and_answer_cohorts() {
    let reports = corpus(40, 20260819);
    let dir = fresh_dir("migrate");
    let config = CreateConfig::default(); // single shard: both formats land in shard-0

    // Seal two format-3 segments, then crash without a shutdown flush.
    {
        let system = Create::open(&dir, config.clone()).expect("open");
        for r in &reports[..20] {
            system.ingest_gold(r).expect("ingest");
        }
        system.flush().expect("first seal");
        for r in &reports[20..] {
            system.ingest_gold(r).expect("ingest");
        }
        system.flush().expect("second seal");
    }

    // Downgrade the FIRST sealed segment to the legacy format-2 layout
    // (no facet region) and re-register its new size/checksum — the
    // moral equivalent of a data directory written before the upgrade,
    // with a post-upgrade segment sealed next to it.
    let storage_dir = dir.join(create::storage::STORAGE_DIR);
    let mut manifest = Manifest::load(&storage_dir)
        .expect("manifest readable")
        .expect("manifest present");
    assert!(
        manifest.shards[0].segments.len() >= 2,
        "two flushes seal two segments"
    );
    let shard_dir = storage_dir.join("shard-0");
    let meta = &mut manifest.shards[0].segments[0];
    let seg_path = shard_dir.join(&meta.file);
    let data = read_segment(&seg_path).expect("segment readable");
    let info = write_segment_legacy_v2(&seg_path, &data).expect("rewrite as v2");
    meta.bytes = info.bytes;
    meta.crc = info.crc;
    manifest.store(&storage_dir).expect("manifest swap");

    // Reopen: the v2 segment's facets are recomputed from its stored
    // payloads, the v3 segment's are decoded from its facet region, and
    // every cohort answer is bit-identical to a never-migrated
    // in-memory reference.
    let reopened = Create::open(&dir, config).expect("mixed-format open");
    assert_eq!(reopened.stats().reports, reports.len(), "no document lost");
    let reference = sharded(&reports, 1);
    let mut panel: Vec<String> = gold_cohorts().iter().map(|s| s.criteria_json()).collect();
    panel.push(
        r#"{"filters":[{"field":"sex","values":["female"]}],
            "keywords":"fatigue","facets":["category"],"k":10}"#
            .to_string(),
    );
    for criteria in &panel {
        assert_eq!(
            cohort_body(&reopened, criteria),
            cohort_body(&reference, criteria),
            "migrated data dir diverged for {criteria}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
