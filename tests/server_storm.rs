//! Evented-server behavior under adversarial and high-concurrency
//! clients: keep-alive reuse, pipelining, slowloris timeouts, admission
//! control (429/503/413/400), and graceful drain.

use create::server::client::KeepAliveClient;
use create::server::http::{Response, Status};
use create::server::server::{http_get, ServerConfig};
use create::server::{Router, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn storm_router() -> Router {
    let mut r = Router::new();
    r.route("GET", "/ping", |_, _| Response::text(Status::Ok, "pong"));
    r.route("GET", "/echo/:id", |_, p| {
        Response::text(Status::Ok, p["id"].clone())
    });
    r.route("GET", "/slow", |_, _| {
        std::thread::sleep(Duration::from_millis(400));
        Response::text(Status::Ok, "slept")
    });
    r.route("POST", "/submit", |req, _| {
        Response::text(Status::Created, format!("got {}", req.body.len()))
    });
    r
}

/// Spawns a serving thread, returns `(addr, shutdown, join)`.
fn spawn_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    create::server::server::ShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind_with("127.0.0.1:0", storm_router(), config).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        worker_threads: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn keep_alive_socket_serves_many_requests() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..50 {
        let resp = client.get("/ping").unwrap();
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.body_str(), "pong");
        assert!(resp.keep_alive(), "HTTP/1.1 default must keep the socket open");
    }
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn pipelined_requests_answered_in_order() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let paths: Vec<String> = (0..16).map(|i| format!("/echo/{i}")).collect();
    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let responses = client.pipeline_get(&refs).unwrap();
    assert_eq!(responses.len(), 16);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str(), i.to_string(), "responses must arrive in order");
    }
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_close_header_is_honored() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client
        .send_raw(b"GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let resp = client.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("connection").map(String::as_str), Some("close"));
    // The server must actually close: the next read sees EOF.
    assert!(
        client.read_response().is_err(),
        "socket should be closed after Connection: close"
    );
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn keep_alive_and_close_responses_match() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut ka = KeepAliveClient::connect(addr).unwrap();
    ka.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let via_keep_alive = ka.get("/echo/xyz").unwrap();
    let (status, body) = http_get(addr, "/echo/xyz").unwrap();
    assert_eq!(via_keep_alive.status, status);
    assert_eq!(via_keep_alive.body_str(), body, "payload identical across framings");
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn slowloris_header_trickle_gets_timed_out() {
    let config = ServerConfig {
        worker_threads: 2,
        header_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = spawn_server(config);
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client.send_raw(b"GET /ping HT").unwrap(); // never finishes the header
    let started = std::time::Instant::now();
    let resp = client.read_response();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server must reap the connection promptly"
    );
    // Best-effort 408 before the close; a bare EOF is also acceptable.
    if let Ok(resp) = resp {
        assert_eq!(resp.status, 408);
    }
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn idle_keep_alive_connection_is_reaped() {
    let config = ServerConfig {
        worker_threads: 2,
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = spawn_server(config);
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(client.get("/ping").unwrap().status, 200);
    // Silent close after the idle window: EOF, no response bytes.
    assert!(client.read_response().is_err());
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn route_limit_sheds_with_429_and_retry_after() {
    let config = ServerConfig {
        worker_threads: 4,
        route_limits: vec![("/slow".to_string(), 1)],
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = spawn_server(config);
    let mut busy = KeepAliveClient::connect(addr).unwrap();
    busy.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    busy.send_get("/slow").unwrap(); // occupies the route's single slot
    std::thread::sleep(Duration::from_millis(100));

    let mut shed = KeepAliveClient::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let resp = shed.get("/slow").unwrap();
    assert_eq!(resp.status, 429);
    assert_eq!(resp.headers.get("retry-after").map(String::as_str), Some("1"));
    assert!(resp.keep_alive(), "shedding must not cost the client its connection");
    // The shed connection keeps working for other routes.
    assert_eq!(shed.get("/ping").unwrap().status, 200);
    // And the occupied slot still completes.
    let slow = busy.read_response().unwrap();
    assert_eq!(slow.status, 200);
    assert_eq!(slow.body_str(), "slept");
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_ceiling_sheds_with_503() {
    let config = ServerConfig {
        worker_threads: 2,
        max_connections: 2,
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = spawn_server(config);
    let mut a = KeepAliveClient::connect(addr).unwrap();
    let mut b = KeepAliveClient::connect(addr).unwrap();
    a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(a.get("/ping").unwrap().status, 200);
    assert_eq!(b.get("/ping").unwrap().status, 200);

    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = String::new();
    let _ = over.read_to_string(&mut raw); // 503 then immediate close
    assert!(
        raw.starts_with("HTTP/1.1 503"),
        "over-ceiling accept should be refused, got {raw:?}"
    );
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_body_rejected_with_413() {
    let mut config = quick_config();
    config.limits.max_body_bytes = 1024;
    let (addr, shutdown, join) = spawn_server(config);
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let body = "x".repeat(4096);
    client.send_post("/submit", &body).unwrap();
    let resp = client.read_response().unwrap();
    assert_eq!(resp.status, 413);
    assert_eq!(resp.headers.get("connection").map(String::as_str), Some("close"));
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_request_gets_a_400_not_a_dropped_socket() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    for raw in [
        &b"GARBAGE\r\n\r\n"[..],
        b"GET /x HTTP/1.1 extra\r\n\r\n",
        b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
    ] {
        let mut client = KeepAliveClient::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        client.send_raw(raw).unwrap();
        let resp = client.read_response().unwrap();
        assert_eq!(resp.status, 400, "{raw:?}");
        assert!(!resp.body.is_empty(), "400 carries an error envelope");
    }
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn graceful_drain_completes_in_flight_requests() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client.send_get("/slow").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // request is now on a worker
    shutdown.shutdown();
    let resp = client.read_response().unwrap();
    assert_eq!(resp.status, 200, "in-flight request must finish during drain");
    assert_eq!(resp.body_str(), "slept");
    join.join().unwrap();

    // After drain the server is gone: new connections fail or see EOF.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            let _ = s.write_all(b"GET /ping HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let n = s.read_to_string(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "drained server must not serve new requests");
        }
    }
}

#[test]
fn requests_during_drain_are_shed_with_503() {
    let (addr, shutdown, join) = spawn_server(quick_config());
    let mut slow = KeepAliveClient::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut bystander = KeepAliveClient::connect(addr).unwrap();
    bystander.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(bystander.get("/ping").unwrap().status, 200);

    slow.send_get("/slow").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    shutdown.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    // A request racing the drain on a previously-idle connection either
    // gets shed with 503 or finds the socket already closed.
    bystander.send_get("/ping").unwrap_or(());
    if let Ok(resp) = bystander.read_response() {
        assert_eq!(resp.status, 503);
    }
    assert_eq!(slow.read_response().unwrap().status, 200);
    join.join().unwrap();
}

#[test]
fn poll_backend_handles_keep_alive_and_pipelining() {
    let config = ServerConfig {
        worker_threads: 2,
        use_poll_backend: true,
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = spawn_server(config);
    let mut client = KeepAliveClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for _ in 0..10 {
        assert_eq!(client.get("/ping").unwrap().status, 200);
    }
    let responses = client.pipeline_get(&["/echo/a", "/echo/b"]).unwrap();
    assert_eq!(responses[0].body_str(), "a");
    assert_eq!(responses[1].body_str(), "b");
    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_storm_smoke() {
    // A miniature version of the bench gate: many concurrent keep-alive
    // sockets, every request answered, zero errors.
    let (addr, shutdown, join) = spawn_server(quick_config());
    let clients: Vec<_> = (0..32)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = KeepAliveClient::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut ok = 0;
                for _ in 0..25 {
                    if c.get("/ping").map(|r| r.status).unwrap_or(0) == 200 {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let total: usize = clients.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(total, 32 * 25, "every storm request must succeed");
    shutdown.shutdown();
    join.join().unwrap();
}
