//! Parallel batch ingestion must be bit-for-bit indistinguishable from
//! sequential ingestion: identical system stats, identical postings, and
//! identical rankings (score bits included) for a panel of generated
//! queries, at every thread count.

use create::core::{Create, CreateConfig};
use create::corpus::{CorpusConfig, Generator, QuerySet};

fn corpus(n: usize, seed: u64) -> Vec<create::corpus::CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

#[test]
fn batch_ingestion_is_deterministic_across_thread_counts() {
    let reports = corpus(120, 4242);
    let queries = QuerySet::generate(&reports, 4243, 16);

    // Sequential per-document ingestion is the reference.
    let reference = Create::new(CreateConfig::default());
    for r in &reports {
        reference.ingest_gold(r).expect("sequential ingest");
    }
    let ref_stats = reference.stats();
    let ref_bytes = reference.index().postings_bytes();
    let ref_rankings: Vec<Vec<(String, u64)>> = queries
        .queries
        .iter()
        .map(|q| {
            reference
                .search(&q.text, 10)
                .into_iter()
                .map(|h| (h.report_id, h.score.to_bits()))
                .collect()
        })
        .collect();

    for threads in [1, 2, 8] {
        let system = Create::new(CreateConfig::default());
        let count = system
            .ingest_gold_batch(&reports, threads)
            .expect("batch ingest");
        assert_eq!(count, reports.len());
        assert_eq!(
            system.stats(),
            ref_stats,
            "SystemStats diverged at {threads} threads"
        );
        assert_eq!(
            system.index().postings_bytes(),
            ref_bytes,
            "postings diverged at {threads} threads"
        );
        for (q, expected) in queries.queries.iter().zip(&ref_rankings) {
            let got: Vec<(String, u64)> = system
                .search(&q.text, 10)
                .into_iter()
                .map(|h| (h.report_id, h.score.to_bits()))
                .collect();
            assert_eq!(
                &got, expected,
                "ranking diverged at {threads} threads for query {:?}",
                q.text
            );
        }
    }
}

#[test]
fn search_many_is_deterministic() {
    let reports = corpus(60, 7);
    let system = Create::new(CreateConfig::default());
    system.ingest_gold_batch(&reports, 4).expect("batch ingest");

    let queries = QuerySet::generate(&reports, 8, 12);
    let texts: Vec<&str> = queries.queries.iter().map(|q| q.text.as_str()).collect();

    let batched = system.search_many(&texts, 10);
    assert_eq!(batched.len(), texts.len());
    for (text, hits) in texts.iter().zip(&batched) {
        let individual = system.search(text, 10);
        assert_eq!(individual.len(), hits.len());
        for (a, b) in individual.iter().zip(hits) {
            assert_eq!(a.report_id, b.report_id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}
