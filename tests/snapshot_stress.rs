//! Stress test for snapshot-isolated reads.
//!
//! A writer thread batch-ingests the corpus one chunk at a time while
//! reader threads hammer a fixed query panel. Every result set a reader
//! observes must be *bit-identical* to what a quiescent system at exactly
//! one generation would return — a ranking mixing graph hits from one
//! generation with keyword hits from another (a torn read) matches no
//! generation and fails the test. Readers also check that the generations
//! they observe never roll backwards, and a separate test pins the cache
//! contract: entries stamped with an old snapshot's generation survive the
//! publish itself but die (as misses) on first touch afterwards.

use create::core::{Create, CreateConfig};
use create::corpus::{CaseReport, CorpusConfig, Generator, QuerySet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BATCHES: usize = 5;
const PER_BATCH: usize = 16;
const READERS: usize = 4;
const K: usize = 10;

/// Rankings are compared at the bit level: report id + raw score bits.
type Ranking = Vec<(String, u64)>;

fn corpus(n: usize, seed: u64) -> Vec<CaseReport> {
    Generator::new(CorpusConfig {
        num_reports: n,
        seed,
        ..Default::default()
    })
    .generate()
}

fn ranking(system: &Create, query: &str) -> Ranking {
    system
        .search(query, K)
        .into_iter()
        .map(|h| (h.report_id, h.score.to_bits()))
        .collect()
}

#[test]
fn concurrent_readers_never_observe_torn_results() {
    let reports = corpus(BATCHES * PER_BATCH, 20260806);
    let queries: Vec<String> = QuerySet::generate(&reports, 77, 6)
        .queries
        .into_iter()
        .map(|q| q.text)
        .collect();

    // Reference pass: replay the exact batch schedule on a quiescent
    // system and record the expected rankings at every generation.
    // `expected[g][qi]` is the panel's ranking with g batches applied.
    let reference = Create::new(CreateConfig::default());
    let mut expected: Vec<Vec<Ranking>> = Vec::with_capacity(BATCHES + 1);
    expected.push(queries.iter().map(|q| ranking(&reference, q)).collect());
    for (i, batch) in reports.chunks(PER_BATCH).enumerate() {
        reference.ingest_gold_batch(batch, 0).expect("reference ingest");
        assert_eq!(
            reference.cache_stats().generation,
            (i + 1) as u64,
            "each batch publishes exactly one generation"
        );
        expected.push(queries.iter().map(|q| ranking(&reference, q)).collect());
    }

    // Live pass: one writer applying the same schedule, READERS threads
    // searching concurrently against whatever snapshot is current.
    let system = Arc::new(Create::new(CreateConfig::default()));
    let done = Arc::new(AtomicBool::new(false));
    let expected = Arc::new(expected);
    let queries = Arc::new(queries);

    let mut handles = Vec::new();
    for reader in 0..READERS {
        let system = Arc::clone(&system);
        let done = Arc::clone(&done);
        let expected = Arc::clone(&expected);
        let queries = Arc::clone(&queries);
        handles.push(std::thread::spawn(move || {
            // Lower bound on the generation this reader has proven it saw,
            // per query; observed generations must never roll backwards.
            let mut floor = vec![0usize; queries.len()];
            loop {
                let finished = done.load(Ordering::SeqCst);
                for (qi, query) in queries.iter().enumerate() {
                    let got = ranking(&system, query);
                    let matches: Vec<usize> = (0..expected.len())
                        .filter(|&g| expected[g][qi] == got)
                        .collect();
                    assert!(
                        !matches.is_empty(),
                        "reader {reader} observed a ranking for {query:?} that matches \
                         no single generation — torn read: {got:?}"
                    );
                    let candidate = matches.iter().copied().find(|&g| g >= floor[qi]);
                    let Some(g) = candidate else {
                        panic!(
                            "reader {reader} observed {query:?} roll back below \
                             generation {} (matches: {matches:?})",
                            floor[qi]
                        );
                    };
                    floor[qi] = g;
                }
                if finished {
                    break;
                }
            }
        }));
    }

    let writer = {
        let system = Arc::clone(&system);
        let done = Arc::clone(&done);
        let reports = reports.clone();
        std::thread::spawn(move || {
            for batch in reports.chunks(PER_BATCH) {
                system.ingest_gold_batch(batch, 2).expect("live ingest");
                // Give readers a window to observe this generation.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    writer.join().expect("writer thread");
    for handle in handles {
        handle.join().expect("reader thread");
    }

    // The fully-ingested live system converges on the reference.
    assert_eq!(system.cache_stats().generation, BATCHES as u64);
    for (qi, query) in queries.iter().enumerate() {
        assert_eq!(
            ranking(&system, query),
            expected[BATCHES][qi],
            "final ranking for {query:?} diverged from the quiescent reference"
        );
    }
}

#[test]
fn stale_cache_entries_die_on_first_touch_after_publish() {
    let reports = corpus(30, 99);
    let system = Create::new(CreateConfig::default());
    system
        .ingest_gold_batch(&reports[..20], 0)
        .expect("initial ingest");

    let query = "fever cough";
    let cold = ranking(&system, query); // computed + cached
    let warm = ranking(&system, query); // served from cache
    assert_eq!(cold, warm);
    let before = system.cache_stats();
    assert_eq!(before.hits, 1);
    assert_eq!(before.misses, 1);
    assert_eq!(before.entries, 1);

    // Publishing a new snapshot does not eagerly sweep the cache…
    system
        .ingest_gold_batch(&reports[20..], 0)
        .expect("second ingest");
    let published = system.cache_stats();
    assert_eq!(published.generation, before.generation + 1);
    assert_eq!(
        published.entries, 1,
        "publish leaves stale entries in place; they die lazily"
    );
    assert_eq!((published.hits, published.misses), (before.hits, before.misses));

    // …the stale entry dies on its first touch: a miss, replaced in
    // place (no duplicate entry for the same key).
    let _ = ranking(&system, query);
    let touched = system.cache_stats();
    assert_eq!(touched.misses, published.misses + 1, "stale entry is a miss");
    assert_eq!(touched.hits, published.hits, "stale entry never serves a hit");
    assert_eq!(touched.entries, 1, "stale entry replaced, not duplicated");

    // The refreshed entry is live again at the new generation.
    let _ = ranking(&system, query);
    let refreshed = system.cache_stats();
    assert_eq!(refreshed.hits, touched.hits + 1);
    assert_eq!(refreshed.misses, touched.misses);
}
