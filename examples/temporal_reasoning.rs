//! Temporal reasoning walkthrough: the Fig-5 graph, PSL-regularized
//! relation extraction, and global inference.
//!
//! ```bash
//! cargo run --release --example temporal_reasoning
//! ```

use create::corpus::temporal_data::i2b2_like;
use create::ontology::RelationType;
use create::temporal::global::count_violations;
use create::temporal::model::{TemporalModel, TrainMode, TrainOptions};
use create::temporal::TemporalGraph;

fn main() {
    // ---- Part 1: the paper's Fig-5 transitivity example ----
    let g = TemporalGraph::fig5_example();
    println!("Fig-5 temporal graph ({} events):", g.len());
    for (i, label) in g.labels().iter().enumerate() {
        println!("  ({}) {}", (b'a' + i as u8) as char, label);
    }
    println!("\nstated relations: {} edges", g.edges().len());
    println!(
        "inferred by transitivity: b vs f → {:?}",
        g.infer(1, 5).map(|r| r.label())
    );
    println!(
        "inferred by transitivity: a vs g → {:?}",
        g.infer(0, 6).map(|r| r.label())
    );
    println!("graph consistent: {}", g.is_consistent());

    // ---- Part 2: learned temporal relation extraction ----
    println!("\ntraining temporal relation models on the I2B2-2012-like dataset…");
    let dataset = i2b2_like(42, 200);
    let (train, test) = dataset.split(0.8);

    let local = TemporalModel::train(
        &train,
        &dataset.labels,
        &TrainOptions {
            mode: TrainMode::Local,
            ..Default::default()
        },
    );
    let (local_f1, _) = local.evaluate(&test);

    let psl = TemporalModel::train(
        &train,
        &dataset.labels,
        &TrainOptions {
            mode: TrainMode::PslRegularized,
            ..Default::default()
        },
    );
    let (psl_f1, _) = psl.evaluate(&test);

    println!("  local classifier:           F1 = {local_f1:.4}");
    println!("  PSL + global inference:     F1 = {psl_f1:.4}");
    println!(
        "  delta:                      {:+.2} F1 points",
        (psl_f1 - local_f1) * 100.0
    );

    // ---- Part 3: what global inference repairs ----
    let mut raw = TemporalModel::train(
        &train,
        &dataset.labels,
        &TrainOptions {
            mode: TrainMode::PslRegularized,
            ..Default::default()
        },
    );
    raw.set_global_inference(false);
    let mut violations_before = 0usize;
    let mut violations_after = 0usize;
    for doc in &test {
        let pairs: Vec<(usize, usize)> = doc.pairs.iter().map(|&(i, j, _)| (i, j)).collect();
        let to_idx = |preds: &[RelationType]| -> Vec<usize> {
            preds
                .iter()
                .map(|p| dataset.labels.iter().position(|l| l == p).unwrap())
                .collect()
        };
        let before = to_idx(&raw.predict_doc(doc));
        violations_before += count_violations(&pairs, &before, &dataset.labels);
        let after = to_idx(&psl.predict_doc(doc));
        violations_after += count_violations(&pairs, &after, &dataset.labels);
    }
    println!("\ntransitivity violations on test predictions:");
    println!("  without global inference: {violations_before}");
    println!("  with global inference:    {violations_after}");
}
