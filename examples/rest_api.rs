//! The REST API end-to-end: boot the HTTP server over a loaded platform
//! and exercise every endpoint with a plain TCP client.
//!
//! ```bash
//! cargo run --release --example rest_api -- --log-level debug
//! # durable mode: WAL + segments under DIR/storage, crash-recoverable
//! cargo run --release --example rest_api -- --data-dir /tmp/create-data --addr 127.0.0.1:8745 --serve
//! ```

use create::core::{Create, CreateConfig};
use create::corpus::{CorpusConfig, Generator};
use create::server::server::{http_get, http_post};
use create::server::{build_api, Server};
use std::sync::Arc;

fn main() {
    // `--log-level error|warn|info|debug` tunes the obs event log.
    // `--data-dir DIR` opens a disk-backed (WAL + segment) platform at
    // DIR instead of an in-memory one — killing the process and
    // restarting recovers every acknowledged write.
    // `--addr HOST:PORT` pins the listen address (default: an
    // OS-assigned port). `--serve` keeps serving until killed instead
    // of running the scripted endpoint tour.
    let mut args = std::env::args().skip(1);
    let mut data_dir: Option<String> = None;
    let mut addr_arg = "127.0.0.1:0".to_string();
    let mut serve_forever = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--log-level" => {
                let value = args.next().unwrap_or_default();
                match create::obs::Level::parse(&value) {
                    Some(level) => create::obs::set_log_level(level),
                    None => {
                        eprintln!("unknown log level {value:?} (use error|warn|info|debug)");
                        std::process::exit(2);
                    }
                }
            }
            "--data-dir" => data_dir = Some(args.next().unwrap_or_default()),
            "--addr" => addr_arg = args.next().unwrap_or_default(),
            "--serve" => serve_forever = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    // Load the platform with a tagger so POST /submit works.
    let reports = Generator::new(CorpusConfig {
        num_reports: 80,
        seed: 55,
        ..Default::default()
    })
    .generate();
    let system = match &data_dir {
        Some(dir) => match Create::open(dir, CreateConfig::default()) {
            Ok(system) => system,
            Err(e) => {
                eprintln!("failed to open {dir:?}: {e}");
                std::process::exit(1);
            }
        },
        None => Create::new(CreateConfig::default()),
    };
    let dataset =
        create::ner::NerDataset::from_reports(&reports, create::ner::LabelSet::ner_targets());
    let tagger = create::ner::CrfTagger::train(
        &dataset,
        create::ner::CrfTaggerConfig::default(),
        Some(system.ontology()),
        None,
    );
    system.attach_tagger(tagger);
    // A reopened data directory already holds the corpus — only seed it
    // on first boot so repeated restarts don't duplicate work.
    if system.stats().reports == 0 {
        for r in &reports {
            system.ingest_gold(r).expect("ingest");
        }
    }
    let first_id = reports[0].id.clone();

    let shared = Arc::new(system);
    let server = Server::bind(addr_arg.as_str(), build_api(Arc::clone(&shared))).expect("bind");
    // Graceful shutdown persists the document store (a no-op for this
    // in-memory demo, but the wiring is what a disk-backed deployment
    // relies on).
    let flusher = Arc::clone(&shared);
    server.on_shutdown(move || {
        if let Err(e) = flusher.flush() {
            eprintln!("flush on shutdown failed: {e}");
        }
    });
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());
    println!("CREATe REST API listening on http://{addr}\n");

    if serve_forever {
        // Serve until killed — used by the crash-recovery smoke test,
        // which SIGKILLs this process and expects a clean reopen.
        server_thread.join().expect("server thread");
        return;
    }

    let show = |label: &str, result: std::io::Result<(u16, String)>| {
        let (status, body) = result.expect("request");
        let preview: String = body.chars().take(160).collect();
        println!("{label}\n  → {status}: {preview}…\n");
    };

    show("GET /health", http_get(addr, "/health"));
    show("GET /stats", http_get(addr, "/stats"));
    show(
        "GET /search?q=fever+and+cough",
        http_get(addr, "/search?q=fever+and+cough&k=3"),
    );
    show(
        "GET /search with es_only (Solr mode)",
        http_get(addr, "/search?q=fever+and+cough&k=3&policy=es_only"),
    );
    show(
        &format!("GET /reports/{first_id}"),
        http_get(addr, &format!("/reports/{first_id}")),
    );
    show(
        &format!("GET /reports/{first_id}/annotations (BRAT)"),
        http_get(addr, &format!("/reports/{first_id}/annotations")),
    );
    show(
        &format!("GET /reports/{first_id}/graph.svg"),
        http_get(addr, &format!("/reports/{first_id}/graph.svg")),
    );
    show(
        "POST /submit",
        http_post(
            addr,
            "/submit",
            r#"{"id": "user:rest1", "title": "Submitted case", "text": "A 50-year-old man presented with chest pain. An electrocardiogram revealed myocardial infarction. He was treated with aspirin.", "year": 2021}"#,
        ),
    );
    show(
        "GET /search?q=chest+pain (finds the submission)",
        http_get(addr, "/search?q=chest+pain+myocardial+infarction&k=3"),
    );
    show("POST /flush (persist document store)", http_post(addr, "/flush", ""));
    show("GET /metrics (Prometheus exposition)", http_get(addr, "/metrics"));
    show("GET /slowlog", http_get(addr, "/slowlog"));

    handle.shutdown();
    server_thread.join().expect("server thread");
    println!("server stopped cleanly");
}
