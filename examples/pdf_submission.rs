//! The PDF submission service: fabricate a PDF case report, push it
//! through the Grobid-style extraction pipeline, and ingest the result.
//!
//! ```bash
//! cargo run --release --example pdf_submission
//! ```

use create::core::{Create, CreateConfig};
use create::corpus::{CorpusConfig, Generator};
use create::grobid::{write_pdf, PdfSource};
use create::ner::{CrfTagger, CrfTaggerConfig, LabelSet, NerDataset};

fn main() {
    // Train a small NER tagger so automatic extraction works on the
    // submitted text.
    let reports = Generator::new(CorpusConfig {
        num_reports: 60,
        seed: 99,
        ..Default::default()
    })
    .generate();
    let dataset = NerDataset::from_reports(&reports, LabelSet::ner_targets());
    let system = Create::new(CreateConfig::default());
    println!("training NER tagger on {} sentences…", dataset.len());
    let tagger = CrfTagger::train(
        &dataset,
        CrfTaggerConfig::default(),
        Some(system.ontology()),
        None,
    );
    system.attach_tagger(tagger);

    // A user "uploads" this PDF (we fabricate valid PDF bytes — see
    // crates/grobid/src/pdf.rs).
    let pdf_bytes = write_pdf(&PdfSource {
        title: "Giant cell myocarditis presenting as ventricular tachycardia".into(),
        authors: "Okafor N, Lindgren E, Park S".into(),
        affiliation: "Department of Cardiology, University Medical Center".into(),
        body_lines: vec![
            "Abstract".into(),
            "A 44-year-old man presented with palpitations and syncope.".into(),
            "Introduction".into(),
            "Giant cell myocarditis is a rare, often fulminant disease.".into(),
            "Case report".into(),
            "The patient was admitted to the intensive care unit.".into(),
            "An electrocardiogram revealed ventricular tachycardia.".into(),
            "He was treated with amiodarone 200 mg daily.".into(),
            "Two days later, he developed dyspnea and edema.".into(),
            "An endomyocardial biopsy confirmed the diagnosis.".into(),
            "Conclusion".into(),
            "After two weeks of treatment, the patient was discharged.".into(),
        ],
    });
    println!("fabricated PDF: {} bytes", pdf_bytes.len());

    // Submit: PDF → text/metadata extraction → automatic annotation →
    // all three stores.
    let extracted = system
        .ingest_pdf("user:000001", &pdf_bytes)
        .expect("PDF ingestion");
    println!("\nGrobid-style extraction:");
    println!("  title:       {}", extracted.title);
    println!("  authors:     {}", extracted.authors.join("; "));
    println!("  affiliation: {}", extracted.affiliation);
    println!("  abstract:    {}", extracted.abstract_text);
    println!("  sections:    {}", extracted.sections.len());

    // TEI XML output, as Grobid would emit.
    let tei = extracted.to_tei().serialize();
    println!(
        "\nTEI (first 240 chars):\n  {}…",
        &tei[..240.min(tei.len())]
    );

    // The submission is immediately searchable.
    println!("\nsearch 'ventricular tachycardia amiodarone':");
    for hit in system.search("ventricular tachycardia amiodarone", 3) {
        println!("  {} (score {:.3})", hit.report_id, hit.score);
    }

    // And has a temporal graph to visualize.
    if let Some(svg) = system.visualize("user:000001") {
        let path = std::env::temp_dir().join("create_pdf_submission.svg");
        std::fs::write(&path, &svg).expect("write svg");
        println!("\nwrote event-graph visualization to {}", path.display());
    }
}
