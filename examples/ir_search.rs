//! CREATe-IR vs the Solr baseline on a judged query workload, plus a raw
//! Cypher query against the property graph.
//!
//! ```bash
//! cargo run --release --example ir_search
//! ```

use create::core::eval::{ndcg_at_k, precision_at_k, reciprocal_rank, IrMetrics};
use create::core::{Create, CreateConfig, MergePolicy};
use create::corpus::{CorpusConfig, Generator, QuerySet};
use create::graphdb::exec::run;

fn main() {
    let generator = Generator::new(CorpusConfig {
        num_reports: 400,
        seed: 314,
        ..Default::default()
    });
    let reports = generator.generate();
    let system = Create::new(CreateConfig::default());
    for r in &reports {
        system.ingest_gold(r).expect("ingest");
    }
    let queries = QuerySet::generate(&reports, 7, 40);
    println!(
        "indexed {} reports; evaluating {} judged queries\n",
        reports.len(),
        queries.queries.len()
    );

    // Compare CREATe-IR (Neo4j-first) with the keyword-only Solr baseline.
    for (name, policy) in [
        ("CREATe-IR (neo4j-first)", MergePolicy::Neo4jFirst),
        ("Solr baseline (keyword)", MergePolicy::EsOnly),
    ] {
        let per_query: Vec<(f64, f64, f64)> = queries
            .queries
            .iter()
            .map(|q| {
                let ids: Vec<String> = system
                    .search_with_policy(&q.text, 10, policy)
                    .into_iter()
                    .map(|h| h.report_id)
                    .collect();
                (
                    precision_at_k(&ids, &q.judgments, 10),
                    reciprocal_rank(&ids, &q.judgments),
                    ndcg_at_k(&ids, &q.judgments, 10),
                )
            })
            .collect();
        let m = IrMetrics::aggregate(&per_query);
        println!(
            "{name:<26} P@10={:.4}  MRR={:.4}  nDCG@10={:.4}",
            m.p_at_10, m.mrr, m.ndcg_at_10
        );
    }

    // The graph store also answers Cypher directly (Section III-D:
    // "all nodes and edges are put into Neo4j via cypher query").
    println!("\nCypher: reports mentioning the concept 'fever':");
    let output = run(
        &mut *system.graph_mut(),
        "MATCH (r:Report)-[:MENTIONS]->(c:Concept {label: 'fever'}) RETURN r.reportId LIMIT 5",
    )
    .expect("cypher");
    for row in &output.rows {
        println!("  {:?}", row[0]);
    }

    println!("\nCypher: temporal chains fever → … (BEFORE edges):");
    let output = run(
        &mut *system.graph_mut(),
        "MATCH (a:Event)-[:BEFORE]->(b:Event) WHERE a.label CONTAINS 'fever' \
         RETURN a.reportId, a.label, b.label LIMIT 5",
    )
    .expect("cypher");
    for row in &output.rows {
        println!("  {:?}", row);
    }
}
