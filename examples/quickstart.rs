//! Quickstart: build a small CREATe instance, run the paper's example
//! query, and inspect the results.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use create::core::{Create, CreateConfig};
use create::corpus::{CorpusConfig, Generator};

fn main() {
    // 1) Generate a small synthetic case-report corpus (the substitute for
    //    the paper's PubMed CVD crawl — see DESIGN.md S1).
    let generator = Generator::new(CorpusConfig {
        num_reports: 200,
        seed: 2020,
        ..Default::default()
    });
    let reports = generator.generate();
    println!("generated {} case reports", reports.len());
    println!("example narrative:\n  {}\n", reports[0].text);

    // 2) Ingest into the platform: document store + property graph +
    //    inverted index.
    let system = Create::new(CreateConfig::default());
    for report in &reports {
        system.ingest_gold(report).expect("ingest");
    }
    let stats = system.stats();
    println!(
        "ingested: {} reports | {} graph nodes | {} graph edges | {} index terms\n",
        stats.reports, stats.graph_nodes, stats.graph_edges, stats.index_terms
    );

    // 3) The paper's worked query (Section III-C).
    let query = "A patient was admitted to the hospital because of fever and cough.";
    let parsed = system.parse_query(query);
    println!("query: {query}");
    println!("extracted mentions:");
    for m in &parsed.mentions {
        println!(
            "  {:<24} {:<24} {}",
            m.text,
            m.etype.label(),
            m.concept.map(|c| c.to_string()).unwrap_or_default()
        );
    }
    if let Some((c1, c2, rel)) = parsed.pattern {
        println!("temporal pattern: {c1} {rel} {c2}");
    }

    // 4) CREATe-IR search (Neo4j-first merge).
    println!("\ntop results:");
    for hit in system.search(query, 5) {
        let title = system
            .report(&hit.report_id)
            .and_then(|d| d.get("title").and_then(|t| t.as_str().map(String::from)))
            .unwrap_or_default();
        println!(
            "  [{:<7}] {:<14} score={:<8.3} pattern={} {}",
            match hit.source {
                create::core::SearchSource::Graph => "graph",
                create::core::SearchSource::Keyword => "keyword",
            },
            hit.report_id,
            hit.score,
            hit.pattern_matched,
            title
        );
    }
}
